package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"streamcover/internal/fault"
)

// openFaulty opens a log in a fresh dir through an injector with small
// segments so rotation is easy to trigger.
func openFaulty(t *testing.T, segBytes int64) (*Log, *fault.Injector, string) {
	t.Helper()
	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS())
	l, err := Open(dir, Options{SegmentBytes: segBytes, FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l, inj, dir
}

func appendN(t *testing.T, l *Log, n int, tag string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("%s-%03d", tag, i))); err != nil {
			t.Fatalf("append %s-%d: %v", tag, i, err)
		}
	}
}

// collect replays from pos 1 and returns positions and payloads.
func replayAll(t *testing.T, l *Log) (pos []uint64, payloads []string) {
	t.Helper()
	err := l.Replay(1, func(p uint64, b []byte) error {
		pos = append(pos, p)
		payloads = append(payloads, string(b))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return pos, payloads
}

// TestTruncateBeforeInterruptedMidRemoval: the first segment removal
// fails, leaving truncation half done. The error must surface, retained
// records must survive, and a later retry must finish the job.
func TestTruncateBeforeInterruptedMidRemoval(t *testing.T) {
	l, inj, dir := openFaulty(t, 64) // a few records per segment
	appendN(t, l, 20, "rec")
	segs, err := listSegments(fault.OS(), dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (err %v)", len(segs), err)
	}
	cut := l.LastPos() - 2

	inj.FailRemoves(1, nil)
	if err := l.TruncateBefore(cut); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("interrupted truncation: err %v, want ErrInjected", err)
	}
	// Everything at or above the cut is still replayable despite the mess.
	var got []uint64
	if err := l.Replay(cut, func(p uint64, _ []byte) error {
		got = append(got, p)
		return nil
	}); err != nil {
		t.Fatalf("replay after interrupted truncation: %v", err)
	}
	if uint64(len(got)) != l.LastPos()-cut+1 || got[0] != cut {
		t.Fatalf("replay from %d returned %v", cut, got)
	}
	// Retry with the fault cleared completes the removal.
	if err := l.TruncateBefore(cut); err != nil {
		t.Fatalf("retry truncation: %v", err)
	}
	after, _ := listSegments(fault.OS(), dir)
	if len(after) >= len(segs) {
		t.Fatalf("no segments removed: %d before, %d after", len(segs), len(after))
	}
}

// TestRotationSyncDirFailureRetries: a directory-fsync failure during
// rotation must not strand the half-created segment — the failed Append
// returns an error and the next Append, with the fault gone, succeeds
// (an orphaned file would make the O_EXCL re-create fail forever).
func TestRotationSyncDirFailureRetries(t *testing.T) {
	l, inj, _ := openFaulty(t, 32)
	appendN(t, l, 3, "pre") // 45 bytes > SegmentBytes: next append rotates

	inj.FailSyncDirs(1, nil)
	if _, err := l.Append([]byte("doomed")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append during syncdir fault: err %v, want ErrInjected", err)
	}
	if _, err := l.Append([]byte("retried")); err != nil {
		t.Fatalf("append after fault cleared: %v", err)
	}
	_, payloads := replayAll(t, l)
	if payloads[len(payloads)-1] != "retried" {
		t.Fatalf("last payload %q, want \"retried\"", payloads[len(payloads)-1])
	}
}

// TestReplayOverDeletedSegment: a segment holding live (acknowledged)
// records vanishes out from under the log. Replay must fail loudly, not
// skip the hole.
func TestReplayOverDeletedSegment(t *testing.T) {
	l, _, dir := openFaulty(t, 64)
	appendN(t, l, 20, "rec")
	segs, err := listSegments(fault.OS(), dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (err %v)", len(segs), err)
	}
	// A hole in the middle trips the contiguity check.
	if err := os.Remove(filepath.Join(dir, segs[1].name)); err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(1, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("replay over a missing middle segment succeeded")
	}
	// A hole at the head (positions >= from gone) trips the head check.
	if err := os.Remove(filepath.Join(dir, segs[0].name)); err != nil {
		t.Fatal(err)
	}
	if err := l.Replay(1, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("replay over a missing head segment succeeded")
	}
	// From beyond the holes, what is left is still readable.
	if err := l.Replay(segs[2].firstPos, func(uint64, []byte) error { return nil }); err != nil {
		t.Fatalf("replay of intact tail: %v", err)
	}
}

// TestResetAfterFsyncFailure: an fsync error poisons the log (sticky),
// Reset clears it, and appends resume with monotone contiguous positions.
func TestResetAfterFsyncFailure(t *testing.T) {
	l, inj, _ := openFaulty(t, 1<<20)
	appendN(t, l, 3, "pre")

	inj.FailSyncs(1, nil)
	if _, err := l.Append([]byte("unacked")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append during fsync fault: err %v, want ErrInjected", err)
	}
	// Sticky: the next append fails without touching the disk.
	if _, err := l.Append([]byte("still-poisoned")); err == nil {
		t.Fatal("append succeeded on a poisoned log")
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if _, err := l.Append([]byte("post")); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	pos, payloads := replayAll(t, l)
	for i, p := range pos {
		if p != uint64(i+1) {
			t.Fatalf("positions not contiguous: %v", pos)
		}
	}
	if payloads[len(payloads)-1] != "post" {
		t.Fatalf("last payload %q, want \"post\"", payloads[len(payloads)-1])
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("sync after reset: %v", err)
	}
}

// TestResetAfterTornWrite: the disk fills mid-record, tearing the tail.
// The error classifies as disk-full; Reset truncates the torn bytes and
// the log resumes cleanly once space is back.
func TestResetAfterTornWrite(t *testing.T) {
	l, inj, _ := openFaulty(t, 1<<20)
	appendN(t, l, 2, "pre")

	inj.SetDiskBudget(4) // tears the next record's 8-byte header
	_, err := l.Append([]byte("torn"))
	if err == nil {
		t.Fatal("append succeeded on a full disk")
	}
	if !fault.IsDiskFull(err) {
		t.Fatalf("err %v does not classify as disk-full", err)
	}
	inj.SetDiskBudget(-1)
	if err := l.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if _, err := l.Append([]byte("post")); err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	pos, payloads := replayAll(t, l)
	want := []string{"pre-000", "pre-001", "post"}
	if len(payloads) != len(want) {
		t.Fatalf("replay payloads %v, want %v", payloads, want)
	}
	for i := range want {
		if payloads[i] != want[i] || pos[i] != uint64(i+1) {
			t.Fatalf("replay (%v, %v), want contiguous %v", pos, payloads, want)
		}
	}
}

// TestResetPreservesPositionsWhenSegmentsGone: if every segment vanished,
// Reset must keep the old position space so previously acknowledged
// positions are never reissued to new records.
func TestResetPreservesPositionsWhenSegmentsGone(t *testing.T) {
	l, _, dir := openFaulty(t, 1<<20)
	appendN(t, l, 5, "pre")
	last := l.LastPos()
	segs, _ := listSegments(fault.OS(), dir)
	for _, s := range segs {
		if err := os.Remove(filepath.Join(dir, s.name)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	pos, err := l.Append([]byte("fresh"))
	if err != nil {
		t.Fatalf("append after reset: %v", err)
	}
	if pos != last+1 {
		t.Fatalf("append reissued position %d (last acked was %d)", pos, last)
	}
}
