package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"streamcover/internal/fault"
)

func collect(t *testing.T, l *Log, from uint64) map[uint64][]byte {
	t.Helper()
	out := map[uint64][]byte{}
	if err := l.Replay(from, func(pos uint64, payload []byte) error {
		out[pos] = append([]byte{}, payload...)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64][]byte{}
	for i := 1; i <= 50; i++ {
		payload := bytes.Repeat([]byte{byte(i)}, i*7)
		pos, err := l.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		if pos != uint64(i) {
			t.Fatalf("position %d, want %d", pos, i)
		}
		want[pos] = payload
	}
	if l.LastPos() != 50 {
		t.Fatalf("LastPos %d, want 50", l.LastPos())
	}
	got := collect(t, l, 1)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for pos, payload := range want {
		if !bytes.Equal(got[pos], payload) {
			t.Fatalf("record %d corrupted", pos)
		}
	}
	// Partial replay.
	if got := collect(t, l, 31); len(got) != 20 {
		t.Fatalf("replay from 31 returned %d records, want 20", len(got))
	}
	if d := l.Depth(31); d != 20 {
		t.Fatalf("Depth(31) = %d, want 20", d)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenContinuesPositions(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := l.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pos, err := l2.Append([]byte("after reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if pos != 6 {
		t.Fatalf("position after reopen %d, want 6", pos)
	}
	got := collect(t, l2, 1)
	if len(got) != 6 || string(got[6]) != "after reopen" {
		t.Fatalf("unexpected replay after reopen: %d records", len(got))
	}
	l2.Close()
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 256, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 40; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore, err := listSegments(fault.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segsBefore) < 4 {
		t.Fatalf("expected several segments, got %d", len(segsBefore))
	}
	// All records must still replay across segment boundaries.
	if got := collect(t, l, 1); len(got) != 40 {
		t.Fatalf("replayed %d records, want 40", len(got))
	}
	// Truncation below 30 removes whole older segments but keeps >= 30.
	if err := l.TruncateBefore(30); err != nil {
		t.Fatal(err)
	}
	segsAfter, err := listSegments(fault.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("truncation removed nothing (%d -> %d segments)", len(segsBefore), len(segsAfter))
	}
	got := collect(t, l, 30)
	for pos := uint64(30); pos <= 40; pos++ {
		if _, ok := got[pos]; !ok {
			t.Fatalf("record %d lost by truncation", pos)
		}
	}
	// The active segment survives even if fully below the cutoff.
	if err := l.TruncateBefore(1000); err != nil {
		t.Fatal(err)
	}
	if segs, _ := listSegments(fault.OS(), dir); len(segs) == 0 {
		t.Fatal("truncation deleted the active segment")
	}
	if _, err := l.Append([]byte("still writable")); err != nil {
		t.Fatal(err)
	}
	l.Close()
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("record-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := listSegments(fault.OS(), dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("want 1 segment: %v %v", segs, err)
	}
	path := filepath.Join(dir, segs[0].name)

	for name, tc := range map[string]struct {
		mutate func([]byte) []byte
		intact int
	}{
		// Both truncations lose the torn record 10; trailing garbage is a
		// torn HEADER, so all 10 complete records survive.
		"truncated mid-record": {func(b []byte) []byte { return b[:len(b)-5] }, 9},
		"truncated mid-header": {func(b []byte) []byte { return b[:len(b)-(len("record-10")+3)] }, 9},
		"garbage appended":     {func(b []byte) []byte { return append(append([]byte{}, b...), 0xde, 0xad, 0xbe) }, 10},
	} {
		t.Run(name, func(t *testing.T) {
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(path, orig, 0o644)
			if err := os.WriteFile(path, tc.mutate(orig), 0o644); err != nil {
				t.Fatal(err)
			}
			l2, err := Open(dir, Options{NoSync: true})
			if err != nil {
				t.Fatalf("torn tail must not fail open: %v", err)
			}
			got := collect(t, l2, 1)
			if len(got) != tc.intact {
				t.Fatalf("want the %d intact records, got %d", tc.intact, len(got))
			}
			// The next append lands right after the last intact record.
			pos, err := l2.Append([]byte("replacement"))
			if err != nil {
				t.Fatal(err)
			}
			if pos != uint64(tc.intact)+1 {
				t.Fatalf("append after torn tail at %d, want %d", pos, tc.intact+1)
			}
			l2.Close()
		})
	}
}

func TestCorruptionInsideOlderSegmentFailsReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 128, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if _, err := l.Append(bytes.Repeat([]byte{byte(i)}, 30)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	segs, err := listSegments(fault.OS(), dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want several segments: %v %v", segs, err)
	}
	// Flip a payload byte in the FIRST segment: acknowledged data, must be loud.
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[recHeader+3] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Replay(1, func(uint64, []byte) error { return nil }); err == nil {
		t.Fatal("corruption in an acknowledged segment must fail replay")
	}
	l2.Close()
}

func TestConcurrentAppendGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 4096}) // sync mode: exercises group commit
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	positions := make([][]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				pos, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					errs <- err
					return
				}
				positions[w] = append(positions[w], pos)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for w := range positions {
		for i, pos := range positions[w] {
			if seen[pos] {
				t.Fatalf("duplicate position %d", pos)
			}
			seen[pos] = true
			if i > 0 && positions[w][i-1] >= pos {
				t.Fatalf("writer %d positions not monotone", w)
			}
		}
	}
	if got := collect(t, l, 1); len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
	l.Close()
}

// TestConcurrentAppendAcrossRotations hammers sync-mode appends through
// many segment rotations. A group-commit leader fsyncs its file outside
// the log mutex; rotation must wait that flush out rather than close the
// file underneath it, which used to surface as a sticky "file already
// closed" sync error that poisoned the whole log.
func TestConcurrentAppendAcrossRotations(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512}) // sync mode, tiny segments
	if err != nil {
		t.Fatal(err)
	}
	const writers, each = 8, 60
	payload := bytes.Repeat([]byte{0xab}, 64)
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.Append(payload); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if segs, _ := listSegments(fault.OS(), dir); len(segs) < 2 {
		t.Fatalf("want several segments to exercise rotation, got %d", len(segs))
	}
	if got := collect(t, l, 1); len(got) != writers*each {
		t.Fatalf("replayed %d records, want %d", len(got), writers*each)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync after rotations: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRotationWaitsForInFlightGroupCommit pins the ordering the hammer
// test above can only hit probabilistically: with a group-commit leader
// mid-fsync (syncActive), an append that needs rotation must park rather
// than close the file the leader is flushing — closing it turned the
// leader's already-durable flush into a sticky "file already closed"
// error that poisoned the log.
func TestRotationWaitsForInFlightGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err) // overfills the segment: the next append must rotate
	}
	// Pose as an in-flight fsync leader.
	l.mu.Lock()
	l.syncActive = true
	l.mu.Unlock()

	done := make(chan error, 1)
	go func() {
		_, err := l.Append([]byte("x"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("append finished during an in-flight group commit (err=%v)", err)
	default:
	}
	// The rotation itself must not have happened yet either: no second
	// segment while the leader still owns the file.
	if segs, err := listSegments(fault.OS(), dir); err != nil || len(segs) != 1 {
		t.Fatalf("rotation ran during an in-flight group commit: %d segments (%v)", len(segs), err)
	}

	l.mu.Lock()
	l.syncActive = false
	l.flushCond.Broadcast()
	l.mu.Unlock()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if segs, _ := listSegments(fault.OS(), dir); len(segs) != 2 {
		t.Fatalf("append did not rotate after the group commit settled: %d segments", len(segs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	l, err := Open(t.TempDir(), Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized record must be rejected")
	}
	l.Close()
}
