// Package replica implements kcoverd's cluster mode: consistent-hash
// session placement, a leader-side WAL shipper, and a follower-side
// apply loop.
//
// The design leans entirely on determinism already present in the
// single-node engine. A session's WAL replay is bit-identical at a fixed
// worker count, so replication is physical, not logical: the leader
// ships its committed WAL records verbatim, each follower appends them
// to its own log at the same positions and applies them through the same
// fused decode path, and every replica's estimator — and on-disk log —
// is byte-identical to the leader's. There is no consensus protocol
// here: membership and failover decisions come from the control plane
// (flags, the scenario harness, an operator), and the data plane's only
// job is to make "caught up" mean "byte-equal".
package replica

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVnodes is the virtual-node count per member — enough that a
// three-node ring splits sessions within a few percent of evenly.
const DefaultVnodes = 64

// Ring places session names on cluster members by consistent hashing
// with virtual nodes. Every node and every client builds the ring from
// the same member list and therefore computes the same placement without
// coordination; membership is fixed at construction (re-placement on
// membership change is a control-plane decision, not the ring's).
type Ring struct {
	points  []ringPoint // sorted by hash
	members []string    // sorted, deduplicated
}

type ringPoint struct {
	hash   uint64
	member int32
}

// NewRing builds a ring over members with vnodes virtual nodes each
// (DefaultVnodes when vnodes <= 0). The member list is sorted and
// deduplicated, so callers need not agree on order — only on the set.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("replica: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	uniq := sorted[:1]
	for _, m := range sorted[1:] {
		if m != uniq[len(uniq)-1] {
			uniq = append(uniq, m)
		}
	}
	r := &Ring{
		points:  make([]ringPoint, 0, len(uniq)*vnodes),
		members: uniq,
	}
	for i, m := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:   ringHash(fmt.Sprintf("%s#%d", m, v)),
				member: int32(i),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.member < b.member
	})
	return r, nil
}

// ringHash is FNV-1a (stable across processes and Go versions, unlike
// the runtime map hash) pushed through a splitmix64-style finalizer:
// raw FNV of short keys like "n1#7" is nearly sequential, which would
// cluster all of a member's vnodes contiguously and starve its peers.
func ringHash(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Members returns the ring's member list (sorted, deduplicated).
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Place returns the n distinct members responsible for key, leader
// first, walking clockwise from the key's hash. n is clamped to the
// member count.
func (r *Ring) Place(key string, n int) []string {
	if n <= 0 {
		n = 1
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	for i := 0; len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.member] {
			continue
		}
		seen[p.member] = true
		out = append(out, r.members[p.member])
	}
	return out
}

// Leader returns the member that leads key's session.
func (r *Ring) Leader(key string) string { return r.Place(key, 1)[0] }
