package replica

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streamcover/internal/wire"
)

// ApplyTarget is the follower-side state the applier feeds.
// internal/server implements it on a replica session.
type ApplyTarget interface {
	// Applied reports the replica's watermark: the highest WAL position
	// whose record is durably mirrored and applied.
	Applied() uint64
	// Bootstrap replaces the replica's state with a leader checkpoint
	// covering walPos. It arrives when the leader has truncated past the
	// replica's watermark (or the replica is brand new).
	Bootstrap(walPos uint64, ckpt []byte) error
	// Apply mirrors one WAL record at pos (== Applied()+1) and applies it
	// through the replay path.
	Apply(pos uint64, rec []byte) error
}

// ApplyOptions tunes an applier.
type ApplyOptions struct {
	DialTimeout time.Duration // default 2s
	// ReadTimeout bounds the gap between leader frames; heartbeats arrive
	// every ShipOptions.HeartbeatEvery, so this doubles as the
	// leader-death detector (default 2s).
	ReadTimeout            time.Duration
	BackoffMin, BackoffMax time.Duration // reconnect backoff (20ms..500ms)
}

func (o *ApplyOptions) defaults() {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.ReadTimeout <= 0 {
		o.ReadTimeout = 2 * time.Second
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 20 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 500 * time.Millisecond
	}
}

// errStopped signals a deliberate Stop rather than a stream failure.
var errStopped = errors.New("replica: applier stopped")

// Applier maintains one session's replication stream from its leader:
// dial, subscribe at the current watermark, apply entries in order, and
// reconnect with backoff on any failure. SetLeader retargets it after a
// promotion. The applier also tracks the replica's staleness — the age
// of the last moment it was provably caught up to the leader's durable
// head — which is what staleness-bounded follower reads are gated on.
type Applier struct {
	session string
	target  ApplyTarget
	opts    ApplyOptions

	mu   sync.Mutex
	addr string
	conn net.Conn

	applied    atomic.Uint64
	head       atomic.Uint64 // leader durable head, from heartbeats
	lastCaught atomic.Int64  // unix nanos of the last caught-up proof
	started    time.Time

	stop chan struct{}
	done chan struct{}
}

// NewApplier builds an applier for session, pulling from leaderAddr.
// Call Start to begin.
func NewApplier(session, leaderAddr string, target ApplyTarget, opts ApplyOptions) *Applier {
	opts.defaults()
	return &Applier{
		session: session,
		target:  target,
		opts:    opts,
		addr:    leaderAddr,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the replication loop.
func (a *Applier) Start() {
	a.started = time.Now()
	a.applied.Store(a.target.Applied())
	go a.run()
}

// Stop tears the stream down and waits for the loop to exit. Idempotent
// is not required; callers stop an applier exactly once (promotion or
// session close).
func (a *Applier) Stop() {
	close(a.stop)
	a.mu.Lock()
	if a.conn != nil {
		a.conn.Close()
	}
	a.mu.Unlock()
	<-a.done
}

// SetLeader retargets the applier at a new leader (after a promotion)
// and kicks any live connection so the switch is immediate.
func (a *Applier) SetLeader(addr string) {
	a.mu.Lock()
	a.addr = addr
	if a.conn != nil {
		a.conn.Close()
	}
	a.mu.Unlock()
}

// Leader reports the applier's current leader address.
func (a *Applier) Leader() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.addr
}

// Applied reports the replica watermark.
func (a *Applier) Applied() uint64 { return a.applied.Load() }

// Head reports the last advertised leader durable head.
func (a *Applier) Head() uint64 { return a.head.Load() }

// Staleness reports the watermark age: how long ago the replica was last
// provably caught up (applied >= leader head, on a live stream). A
// replica that has never caught up reports the time since Start.
func (a *Applier) Staleness() time.Duration {
	last := a.lastCaught.Load()
	if last == 0 {
		return time.Since(a.started)
	}
	return time.Since(time.Unix(0, last))
}

func (a *Applier) run() {
	defer close(a.done)
	backoff := a.opts.BackoffMin
	for {
		select {
		case <-a.stop:
			return
		default:
		}
		err := a.stream()
		if errors.Is(err, errStopped) {
			return
		}
		select {
		case <-a.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > a.opts.BackoffMax {
			backoff = a.opts.BackoffMax
		}
	}
}

// stream runs one connection worth of replication.
func (a *Applier) stream() error {
	a.mu.Lock()
	addr := a.addr
	a.mu.Unlock()
	conn, err := net.DialTimeout("tcp", addr, a.opts.DialTimeout)
	if err != nil {
		return err
	}
	a.mu.Lock()
	select {
	case <-a.stop:
		a.mu.Unlock()
		conn.Close()
		return errStopped
	default:
	}
	a.conn = conn
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		if a.conn == conn {
			a.conn = nil
		}
		a.mu.Unlock()
		conn.Close()
	}()

	bw := bufio.NewWriter(conn)
	if err := wire.WriteFrame(bw, wire.TRepSubscribe, wire.EncodeSubscribe(a.session, a.applied.Load())); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	br := bufio.NewReaderSize(conn, 1<<16)
	var scratch []byte
	for {
		select {
		case <-a.stop:
			return errStopped
		default:
		}
		conn.SetReadDeadline(time.Now().Add(a.opts.ReadTimeout))
		typ, payload, err := wire.ReadFrameInto(br, &scratch)
		if err != nil {
			return err
		}
		switch typ {
		case wire.TRepSnapshot:
			walPos, ckpt, err := wire.DecodeSnapshot(payload)
			if err != nil {
				return err
			}
			if err := a.target.Bootstrap(walPos, ckpt); err != nil {
				return fmt.Errorf("replica: bootstrap: %w", err)
			}
			a.applied.Store(walPos)
		case wire.TRepEntry:
			pos, rec, err := wire.DecodeEntry(payload)
			if err != nil {
				return err
			}
			applied := a.applied.Load()
			if pos <= applied {
				continue // duplicate after a resubscribe race; already applied
			}
			if pos != applied+1 {
				return fmt.Errorf("replica: entry gap: got %d, want %d", pos, applied+1)
			}
			if err := a.target.Apply(pos, rec); err != nil {
				return fmt.Errorf("replica: apply %d: %w", pos, err)
			}
			a.applied.Store(pos)
			a.noteCaughtUp()
		case wire.TRepHeartbeat:
			head, err := wire.DecodeHeartbeat(payload)
			if err != nil {
				return err
			}
			a.head.Store(head)
			a.noteCaughtUp()
		case wire.TErrNotLeader:
			next, err := wire.DecodeNotLeader(payload)
			if err == nil && next != "" && next != addr {
				a.mu.Lock()
				if a.addr == addr { // don't override a fresher SetLeader
					a.addr = next
				}
				a.mu.Unlock()
			}
			return fmt.Errorf("replica: %s is not the leader (redirect %q)", addr, next)
		case wire.TErrRetry, wire.TErr:
			return fmt.Errorf("replica: leader rejected subscribe: %s", payload)
		default:
			return fmt.Errorf("replica: unexpected frame 0x%02x on replication stream", typ)
		}
	}
}

// noteCaughtUp stamps the staleness clock whenever the watermark has
// reached the leader's last advertised durable head on a live stream.
// The proof is only as fresh as the last heartbeat, so staleness has
// ShipOptions.HeartbeatEvery resolution.
func (a *Applier) noteCaughtUp() {
	if a.applied.Load() >= a.head.Load() {
		a.lastCaught.Store(time.Now().UnixNano())
	}
}
