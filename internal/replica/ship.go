package replica

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"time"

	"streamcover/internal/wal"
	"streamcover/internal/wire"
)

// ShipSource is the leader-side view of one session's replicated state.
// internal/server implements it on top of the session's durability.
type ShipSource interface {
	// Snapshot returns the session's current checkpoint blob and the WAL
	// position it covers: replaying positions > walPos on top of the
	// decoded checkpoint reproduces the live state. Taking one may force
	// a fresh checkpoint.
	Snapshot() (walPos uint64, ckpt []byte, err error)
	// Log is the session's write-ahead log, for opening shipping readers.
	Log() *wal.Log
}

// ShipOptions tunes one shipping stream.
type ShipOptions struct {
	// HeartbeatEvery is the cadence of TRepHeartbeat frames while the
	// follower is caught up (default 250ms). Heartbeats carry the durable
	// head, so follower staleness resolution is bounded by this.
	HeartbeatEvery time.Duration
	// Poll is how often a caught-up shipper re-checks the log for new
	// records (default 2ms).
	Poll time.Duration
	// FlushEvery bounds how many entry frames may buffer before a flush
	// (default 64).
	FlushEvery int
}

func (o *ShipOptions) defaults() {
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 250 * time.Millisecond
	}
	if o.Poll <= 0 {
		o.Poll = 2 * time.Millisecond
	}
	if o.FlushEvery <= 0 {
		o.FlushEvery = 64
	}
}

// Ship streams src's WAL to one subscribed follower over w, starting
// after the follower's applied position. When the follower is behind the
// log's truncation horizon it first sends a TRepSnapshot bootstrap, then
// streams entries from the checkpoint position. Ship returns when the
// connection breaks, stop closes, or the log reports an error; a clean
// stop returns nil.
//
// The open reader pins the log segments it has yet to deliver, so a
// checkpoint's TruncateBefore cannot race records out from under a slow
// follower (see wal.Reader).
func Ship(w *bufio.Writer, src ShipSource, applied uint64, stop <-chan struct{}, opts ShipOptions) error {
	opts.defaults()
	r, err := openShipReader(w, src, applied)
	if err != nil {
		return err
	}
	defer r.Close()

	var entryBuf []byte
	unflushed := 0
	lastBeat := time.Now()
	beat := func() error {
		if err := wire.WriteFrame(w, wire.TRepHeartbeat, wire.EncodeHeartbeat(src.Log().DurablePos())); err != nil {
			return err
		}
		lastBeat = time.Now()
		return w.Flush()
	}
	if err := beat(); err != nil {
		return err
	}
	for {
		select {
		case <-stop:
			return nil
		default:
		}
		pos, rec, err := r.Next()
		switch {
		case err == nil:
			entryBuf = wire.EncodeEntry(entryBuf, pos, rec)
			if err := wire.WriteFrame(w, wire.TRepEntry, entryBuf); err != nil {
				return err
			}
			if unflushed++; unflushed >= opts.FlushEvery {
				if err := w.Flush(); err != nil {
					return err
				}
				unflushed = 0
			}
		case errors.Is(err, wal.ErrCaughtUp):
			if err := w.Flush(); err != nil {
				return err
			}
			unflushed = 0
			if time.Since(lastBeat) >= opts.HeartbeatEvery {
				if err := beat(); err != nil {
					return err
				}
			}
			select {
			case <-stop:
				return nil
			case <-time.After(opts.Poll):
			}
		default:
			return err
		}
	}
}

// openShipReader opens a reader at applied+1, falling back to a snapshot
// bootstrap when those records are already truncated. The retry loop
// covers a checkpoint advancing the truncation horizon between the
// snapshot and the reader open.
func openShipReader(w *bufio.Writer, src ShipSource, applied uint64) (*wal.Reader, error) {
	r, err := src.Log().OpenReader(applied + 1)
	if err == nil {
		return r, nil
	}
	if !errors.Is(err, wal.ErrTruncated) {
		return nil, err
	}
	var snapBuf []byte
	for attempt := 0; attempt < 5; attempt++ {
		walPos, ckpt, err := src.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("replica: snapshot for bootstrap: %w", err)
		}
		r, err = src.Log().OpenReader(walPos + 1)
		if errors.Is(err, wal.ErrTruncated) {
			continue
		}
		if err != nil {
			return nil, err
		}
		snapBuf = wire.EncodeSnapshot(snapBuf, walPos, ckpt)
		if err := wire.WriteFrame(w, wire.TRepSnapshot, snapBuf); err != nil {
			r.Close()
			return nil, err
		}
		if err := w.Flush(); err != nil {
			r.Close()
			return nil, err
		}
		return r, nil
	}
	return nil, fmt.Errorf("replica: snapshot horizon kept advancing: %w", io.ErrNoProgress)
}
