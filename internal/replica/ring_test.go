package replica

import (
	"fmt"
	"testing"
)

func TestRingDeterministicAcrossMemberOrder(t *testing.T) {
	a, err := NewRing([]string{"n1", "n2", "n3"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"n3", "n1", "n2", "n2"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("session-%d", i)
		pa, pb := a.Place(key, 3), b.Place(key, 3)
		if len(pa) != 3 || len(pb) != 3 {
			t.Fatalf("placement size %d/%d, want 3", len(pa), len(pb))
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("placement differs for %q: %v vs %v", key, pa, pb)
			}
		}
		seen := map[string]bool{}
		for _, m := range pa {
			if seen[m] {
				t.Fatalf("duplicate member in placement %v", pa)
			}
			seen[m] = true
		}
	}
}

func TestRingSpread(t *testing.T) {
	r, err := NewRing([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 600; i++ {
		counts[r.Leader(fmt.Sprintf("s%d", i))]++
	}
	for m, c := range counts {
		if c < 60 {
			t.Fatalf("member %s leads only %d/600 sessions — ring badly skewed: %v", m, c, counts)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d members ever lead: %v", len(counts), counts)
	}
}

func TestRingClampAndSingle(t *testing.T) {
	r, err := NewRing([]string{"only"}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Place("x", 5); len(got) != 1 || got[0] != "only" {
		t.Fatalf("single-member placement %v", got)
	}
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty ring built")
	}
}
