package replica

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"streamcover/internal/wal"
	"streamcover/internal/wire"
)

// leaderSrc is a ShipSource over a bare log with a canned checkpoint.
type leaderSrc struct {
	log      *wal.Log
	snapPos  uint64
	snapBlob []byte
}

func (s *leaderSrc) Snapshot() (uint64, []byte, error) { return s.snapPos, s.snapBlob, nil }
func (s *leaderSrc) Log() *wal.Log                     { return s.log }

// mirrorTarget is an ApplyTarget that mirrors records into its own log,
// exactly as the server's follower session does.
type mirrorTarget struct {
	log *wal.Log

	mu   sync.Mutex
	recs map[uint64][]byte
	boot []byte
	bpos uint64
}

func (t *mirrorTarget) Applied() uint64 { return t.log.LastPos() }

func (t *mirrorTarget) Bootstrap(walPos uint64, ckpt []byte) error {
	if err := t.log.InitPos(walPos + 1); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.boot = append([]byte(nil), ckpt...)
	t.bpos = walPos
	return nil
}

func (t *mirrorTarget) Apply(pos uint64, rec []byte) error {
	got, err := t.log.Append(rec)
	if err != nil {
		return err
	}
	if got != pos {
		return fmt.Errorf("mirror landed at %d, want %d", got, pos)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.recs == nil {
		t.recs = map[uint64][]byte{}
	}
	t.recs[pos] = append([]byte(nil), rec...)
	return nil
}

// serveShipper accepts subscribe connections and ships src on each.
func serveShipper(t *testing.T, src *leaderSrc) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	stopCh := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(conn net.Conn) {
				defer wg.Done()
				defer conn.Close()
				var scratch []byte
				typ, payload, err := wire.ReadFrameInto(bufio.NewReader(conn), &scratch)
				if err != nil || typ != wire.TRepSubscribe {
					return
				}
				_, applied, err := wire.DecodeSubscribe(payload)
				if err != nil {
					return
				}
				Ship(bufio.NewWriter(conn), src, applied, stopCh, ShipOptions{
					HeartbeatEvery: 20 * time.Millisecond,
					Poll:           time.Millisecond,
				})
			}(conn)
		}
	}()
	return ln.Addr().String(), func() {
		close(stopCh)
		ln.Close()
		wg.Wait()
	}
}

func waitApplied(t *testing.T, a *Applier, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Applied() < want {
		if time.Now().After(deadline) {
			t.Fatalf("applier stuck at %d, want %d", a.Applied(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestShipApplyMirrorsLog(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	llog, err := wal.Open(ldir, wal.Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer llog.Close()
	want := map[uint64][]byte{}
	for i := 1; i <= 100; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, 1+i%17)
		pos, err := llog.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		want[pos] = rec
	}
	src := &leaderSrc{log: llog}
	addr, stop := serveShipper(t, src)
	defer stop()

	flog, err := wal.Open(fdir, wal.Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer flog.Close()
	tgt := &mirrorTarget{log: flog}
	a := NewApplier("s", addr, tgt, ApplyOptions{ReadTimeout: 500 * time.Millisecond})
	a.Start()
	defer a.Stop()
	waitApplied(t, a, 100)

	// Live tail: appends after subscribe flow through.
	for i := 101; i <= 140; i++ {
		rec := bytes.Repeat([]byte{byte(i)}, 1+i%17)
		pos, err := llog.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		want[pos] = rec
	}
	waitApplied(t, a, 140)

	tgt.mu.Lock()
	defer tgt.mu.Unlock()
	if len(tgt.recs) != 140 {
		t.Fatalf("mirrored %d records, want 140", len(tgt.recs))
	}
	for pos, rec := range want {
		if !bytes.Equal(tgt.recs[pos], rec) {
			t.Fatalf("record %d differs", pos)
		}
	}
	// Caught up ⇒ staleness is heartbeat-fresh.
	deadline := time.Now().Add(2 * time.Second)
	for a.Staleness() > 250*time.Millisecond {
		if time.Now().After(deadline) {
			t.Fatalf("staleness never settled: %v", a.Staleness())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestShipBootstrapsTruncatedFollower(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	llog, err := wal.Open(ldir, wal.Options{NoSync: true, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer llog.Close()
	for i := 1; i <= 30; i++ {
		if _, err := llog.Append(bytes.Repeat([]byte{byte(i)}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	// Checkpoint at 20 and truncate: a fresh follower can no longer
	// replay from the start and must bootstrap.
	if err := llog.TruncateBefore(21); err != nil {
		t.Fatal(err)
	}
	src := &leaderSrc{log: llog, snapPos: 20, snapBlob: []byte("ckpt@20")}
	addr, stop := serveShipper(t, src)
	defer stop()

	flog, err := wal.Open(fdir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer flog.Close()
	tgt := &mirrorTarget{log: flog}
	a := NewApplier("s", addr, tgt, ApplyOptions{ReadTimeout: 500 * time.Millisecond})
	a.Start()
	defer a.Stop()
	waitApplied(t, a, 30)

	tgt.mu.Lock()
	defer tgt.mu.Unlock()
	if tgt.bpos != 20 || string(tgt.boot) != "ckpt@20" {
		t.Fatalf("bootstrap (%d, %q), want (20, ckpt@20)", tgt.bpos, tgt.boot)
	}
	if len(tgt.recs) != 10 {
		t.Fatalf("mirrored %d tail records, want 10", len(tgt.recs))
	}
	if flog.LastPos() != 30 {
		t.Fatalf("follower log head %d, want 30", flog.LastPos())
	}
}

func TestApplierSurvivesLeaderRestart(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	llog, err := wal.Open(ldir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer llog.Close()
	for i := 1; i <= 10; i++ {
		if _, err := llog.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	src := &leaderSrc{log: llog}
	addr, stop := serveShipper(t, src)

	flog, err := wal.Open(fdir, wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer flog.Close()
	a := NewApplier("s", addr, &mirrorTarget{log: flog}, ApplyOptions{
		ReadTimeout: 200 * time.Millisecond,
		BackoffMin:  5 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
	})
	a.Start()
	defer a.Stop()
	waitApplied(t, a, 10)

	// Kill the leader, append more, bring a new one up on a new address,
	// and retarget — the applier resubscribes from its watermark.
	stop()
	for i := 11; i <= 20; i++ {
		if _, err := llog.Append([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	addr2, stop2 := serveShipper(t, src)
	defer stop2()
	a.SetLeader(addr2)
	waitApplied(t, a, 20)
	if flog.LastPos() != 20 {
		t.Fatalf("follower log head %d, want 20", flog.LastPos())
	}
}
