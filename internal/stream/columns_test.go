package stream

import (
	"math/rand"
	"testing"
)

func randomColumns(count, m, n int, rng *rand.Rand) (sets, elems []uint32) {
	sets = make([]uint32, count)
	elems = make([]uint32, count)
	for i := range sets {
		sets[i] = uint32(rng.Intn(m))
		elems[i] = uint32(rng.Intn(n))
	}
	return sets, elems
}

func TestColumnsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, count := range []int{0, 1, 7, 4096} {
		sets, elems := randomColumns(count, 500, 9000, rng)
		blob := AppendBinaryColumns(nil, sets, elems, 500, 9000)

		var cols Columns
		m, n, err := DecodeBinaryColumnsInto(blob, &cols)
		if err != nil {
			t.Fatalf("count=%d: decode: %v", count, err)
		}
		if m != 500 || n != 9000 || cols.Len() != count {
			t.Fatalf("count=%d: got dims (%d,%d) len %d", count, m, n, cols.Len())
		}
		for i := range sets {
			if cols.Sets[i] != sets[i] || cols.Elems[i] != elems[i] {
				t.Fatalf("count=%d: edge %d mismatch", count, i)
			}
		}

		// DecodeBinaryInto must sniff the columnar magic and agree.
		var cols2 Columns
		if m2, n2, err := DecodeBinaryInto(blob, &cols2); err != nil || m2 != m || n2 != n {
			t.Fatalf("count=%d: DecodeBinaryInto: %v (%d,%d)", count, err, m2, n2)
		}
		for i := range sets {
			if cols2.Sets[i] != sets[i] || cols2.Elems[i] != elems[i] {
				t.Fatalf("count=%d: sniffed edge %d mismatch", count, i)
			}
		}
	}
}

// TestDecodeBinaryIntoRowEquivalence pins the fused row decoder to
// DecodeBinary: the same MKC1 blob must yield the same logical edges.
func TestDecodeBinaryIntoRowEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sets, elems := randomColumns(3000, 200, 100000, rng)
	edges := make([]Edge, len(sets))
	for i := range edges {
		edges[i] = Edge{Set: sets[i], Elem: elems[i]}
	}
	blob := AppendBinary(nil, edges, 200, 100000)

	want, wm, wn, err := DecodeBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	var cols Columns
	m, n, err := DecodeBinaryInto(blob, &cols)
	if err != nil {
		t.Fatal(err)
	}
	if m != wm || n != wn || cols.Len() != len(want) {
		t.Fatalf("dims/len mismatch: (%d,%d) %d vs (%d,%d) %d", m, n, cols.Len(), wm, wn, len(want))
	}
	for i, e := range want {
		if cols.Sets[i] != e.Set || cols.Elems[i] != e.Elem {
			t.Fatalf("edge %d: (%d,%d) vs (%d,%d)", i, cols.Sets[i], cols.Elems[i], e.Set, e.Elem)
		}
	}
}

// TestDecodeColumnsReuse verifies repeated decodes into one Columns reuse
// its backing arrays once grown.
func TestDecodeColumnsReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sets, elems := randomColumns(1024, 64, 64, rng)
	blob := AppendBinaryColumns(nil, sets, elems, 64, 64)

	var cols Columns
	if _, _, err := DecodeBinaryColumnsInto(blob, &cols); err != nil {
		t.Fatal(err)
	}
	p0, p1 := &cols.Sets[0], &cols.Elems[0]
	small := AppendBinaryColumns(nil, sets[:10], elems[:10], 64, 64)
	if _, _, err := DecodeBinaryColumnsInto(small, &cols); err != nil {
		t.Fatal(err)
	}
	if cols.Len() != 10 || &cols.Sets[0] != p0 || &cols.Elems[0] != p1 {
		t.Fatal("smaller decode did not reuse the grown arrays")
	}
}

func TestDecodeColumnsMalformed(t *testing.T) {
	good := AppendBinaryColumns(nil, []uint32{1, 2}, []uint32{3, 4}, 10, 10)
	cases := map[string][]byte{
		"empty":          {},
		"short magic":    good[:3],
		"row magic":      AppendBinary(nil, []Edge{{Set: 1, Elem: 2}}, 10, 10),
		"truncated dims": good[:5],
		"truncated body": good[:len(good)-1],
		"trailing byte":  append(append([]byte{}, good...), 0),
		"set oob":        AppendBinaryColumns(nil, []uint32{10}, []uint32{0}, 10, 10),
		"elem oob":       AppendBinaryColumns(nil, []uint32{0}, []uint32{10}, 10, 10),
		"huge count": append([]byte{'M', 'K', 'C', '2'}, // m=1, n=1, count=2^40, no body
			0x01, 0x01, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40),
	}
	for name, blob := range cases {
		var cols Columns
		if _, _, err := DecodeBinaryColumnsInto(blob, &cols); err == nil {
			t.Errorf("%s: decode accepted malformed blob", name)
		}
	}
}
