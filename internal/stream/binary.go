package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// binaryMagic identifies the binary stream format ("MKC1").
var binaryMagic = [4]byte{'M', 'K', 'C', '1'}

// WriteBinary encodes the stream in the compact binary format: a 4-byte
// magic, uvarint m and n, then one (uvarint set, uvarint elem) pair per
// edge. Typically 3-5× smaller and an order of magnitude faster to parse
// than the text format; use it for large generated workloads.
func WriteBinary(w io.Writer, it Iterator, m, n int) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		_, err := bw.Write(buf[:binary.PutUvarint(buf[:], v)])
		return err
	}
	if err := putUvarint(uint64(m)); err != nil {
		return err
	}
	if err := putUvarint(uint64(n)); err != nil {
		return err
	}
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if err := putUvarint(uint64(e.Set)); err != nil {
			return err
		}
		if err := putUvarint(uint64(e.Elem)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a stream written by WriteBinary.
func ReadBinary(r io.Reader) (*Slice, int, int, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, 0, 0, fmt.Errorf("stream: bad binary magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, 0, 0, fmt.Errorf("stream: not a binary stream (magic %q)", magic[:])
	}
	m64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("stream: bad m: %w", err)
	}
	n64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("stream: bad n: %w", err)
	}
	if m64 > 1<<31 || n64 > 1<<31 {
		return nil, 0, 0, fmt.Errorf("stream: implausible dims (%d, %d)", m64, n64)
	}
	m, n := int(m64), int(n64)
	var edges []Edge
	for {
		s, err := binary.ReadUvarint(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, 0, 0, fmt.Errorf("stream: bad edge %d set: %w", len(edges), err)
		}
		e, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, 0, fmt.Errorf("stream: bad edge %d elem: %w", len(edges), err)
		}
		if s >= m64 || e >= n64 {
			return nil, 0, 0, fmt.Errorf("stream: edge (%d,%d) out of bounds (%d,%d)", s, e, m, n)
		}
		edges = append(edges, Edge{Set: uint32(s), Elem: uint32(e)})
	}
	return FromEdges(edges), m, n, nil
}

// AppendBinary appends the MKC1 encoding of an edge slice to buf and
// returns the extended buffer — the allocation-free counterpart of
// WriteBinary for in-memory framing (the kcoverd wire protocol uses one
// MKC1 blob per ingest batch).
func AppendBinary(buf []byte, edges []Edge, m, n int) []byte {
	buf = append(buf, binaryMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(m))
	buf = binary.AppendUvarint(buf, uint64(n))
	for _, e := range edges {
		buf = binary.AppendUvarint(buf, uint64(e.Set))
		buf = binary.AppendUvarint(buf, uint64(e.Elem))
	}
	return buf
}

// DecodeBinary decodes an in-memory MKC1 blob. It is the fast path behind
// ReadBinary: decoding from a byte slice with binary.Uvarint avoids the
// bufio reader's per-byte indirection, which matters on the server ingest
// path where every batch is already a framed []byte.
func DecodeBinary(data []byte) ([]Edge, int, int, error) {
	if len(data) < 4 {
		return nil, 0, 0, fmt.Errorf("stream: bad binary magic: %w", io.ErrUnexpectedEOF)
	}
	if [4]byte(data[:4]) != binaryMagic {
		return nil, 0, 0, fmt.Errorf("stream: not a binary stream (magic %q)", data[:4])
	}
	rest := data[4:]
	next := func(what string) (uint64, error) {
		v, w := binary.Uvarint(rest)
		if w <= 0 {
			return 0, fmt.Errorf("stream: bad %s: truncated uvarint", what)
		}
		rest = rest[w:]
		return v, nil
	}
	m64, err := next("m")
	if err != nil {
		return nil, 0, 0, err
	}
	n64, err := next("n")
	if err != nil {
		return nil, 0, 0, err
	}
	if m64 > 1<<31 || n64 > 1<<31 {
		return nil, 0, 0, fmt.Errorf("stream: implausible dims (%d, %d)", m64, n64)
	}
	edges := make([]Edge, 0, len(rest)/3)
	for len(rest) > 0 {
		s, err := next(fmt.Sprintf("edge %d set", len(edges)))
		if err != nil {
			return nil, 0, 0, err
		}
		e, err := next(fmt.Sprintf("edge %d elem", len(edges)))
		if err != nil {
			return nil, 0, 0, err
		}
		if s >= m64 || e >= n64 {
			return nil, 0, 0, fmt.Errorf("stream: edge (%d,%d) out of bounds (%d,%d)", s, e, m64, n64)
		}
		edges = append(edges, Edge{Set: uint32(s), Elem: uint32(e)})
	}
	return edges, int(m64), int(n64), nil
}

// ReadAuto sniffs the format (binary magic vs text header) and decodes
// accordingly.
func ReadAuto(r io.Reader) (*Slice, int, int, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil && len(head) < 4 {
		return nil, 0, 0, fmt.Errorf("stream: input too short: %w", err)
	}
	if [4]byte(head) == binaryMagic {
		return ReadBinary(br)
	}
	return Read(br)
}
