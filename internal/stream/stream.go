// Package stream models the paper's general edge-arrival streaming model:
// the input set system arrives as a sequence of (set, element) pairs in
// arbitrary order — a set's elements may be interleaved with every other
// set's (Section 1). The package provides iterators over in-memory edge
// slices, converters from explicit set systems under several arrival
// orders (set-arrival, shuffled, element-major, round-robin), a plain-text
// codec for stream files, and a pass-counting wrapper that tests use to
// assert single-pass behaviour.
package stream

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"

	"streamcover/internal/setsystem"
)

// Edge is a single (set, element) arrival.
type Edge struct {
	Set  uint32
	Elem uint32
}

// Iterator yields a stream of edges exactly once per pass. Reset rewinds to
// the beginning for simulation convenience; single-pass algorithms must not
// call it (tests enforce this through Counting).
type Iterator interface {
	Next() (Edge, bool)
	Reset()
}

// Slice is an Iterator over an in-memory edge slice.
type Slice struct {
	edges []Edge
	pos   int
}

// FromEdges wraps an edge slice (not copied) in an Iterator.
func FromEdges(edges []Edge) *Slice { return &Slice{edges: edges} }

// Next returns the next edge, or ok=false at end of stream.
func (s *Slice) Next() (Edge, bool) {
	if s.pos >= len(s.edges) {
		return Edge{}, false
	}
	e := s.edges[s.pos]
	s.pos++
	return e, true
}

// Reset rewinds the iterator.
func (s *Slice) Reset() { s.pos = 0 }

// Len returns the total stream length.
func (s *Slice) Len() int { return len(s.edges) }

// Edges exposes the underlying slice (shared, not copied).
func (s *Slice) Edges() []Edge { return s.edges }

// Order selects the arrival order when linearizing a set system.
type Order int

const (
	// SetArrival lists each set's elements contiguously, set by set — the
	// restricted model earlier work assumed.
	SetArrival Order = iota
	// Shuffled permutes all edges uniformly — the general edge-arrival
	// model in its hardest form. Requires a *rand.Rand.
	Shuffled
	// ElementMajor groups edges by element: all sets containing element 0,
	// then element 1, … (the "ingoing edges" orientation of the paper's
	// footnote 2 graph example).
	ElementMajor
	// RoundRobin deals one element from each nonempty set in turn,
	// maximally interleaving sets without randomness.
	RoundRobin
)

// Linearize converts a set system into an edge stream under the given
// order. rng is required only for Shuffled and may be nil otherwise.
func Linearize(ss *setsystem.SetSystem, order Order, rng *rand.Rand) *Slice {
	edges := make([]Edge, 0, ss.Edges())
	switch order {
	case SetArrival, Shuffled:
		for i, set := range ss.Sets {
			for _, e := range set {
				edges = append(edges, Edge{Set: uint32(i), Elem: e})
			}
		}
		if order == Shuffled {
			if rng == nil {
				panic("stream: Shuffled order requires rng")
			}
			rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
		}
	case ElementMajor:
		byElem := make([][]uint32, ss.N)
		for i, set := range ss.Sets {
			for _, e := range set {
				byElem[e] = append(byElem[e], uint32(i))
			}
		}
		for e, sets := range byElem {
			for _, s := range sets {
				edges = append(edges, Edge{Set: s, Elem: uint32(e)})
			}
		}
	case RoundRobin:
		next := make([]int, ss.M())
		remaining := ss.Edges()
		for remaining > 0 {
			for i, set := range ss.Sets {
				if next[i] < len(set) {
					edges = append(edges, Edge{Set: uint32(i), Elem: set[next[i]]})
					next[i]++
					remaining--
				}
			}
		}
	default:
		panic(fmt.Sprintf("stream: unknown order %d", order))
	}
	return FromEdges(edges)
}

// Collect drains an iterator into a slice (one full pass).
func Collect(it Iterator) []Edge {
	var out []Edge
	for {
		e, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, e)
	}
}

// ToSetSystem materializes the stream back into an explicit set system with
// m sets and n elements (IDs beyond the declared bounds are an error).
func ToSetSystem(it Iterator, m, n int) (*setsystem.SetSystem, error) {
	sets := make([][]uint32, m)
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if int(e.Set) >= m {
			return nil, fmt.Errorf("stream: set id %d >= m=%d", e.Set, m)
		}
		if int(e.Elem) >= n {
			return nil, fmt.Errorf("stream: element id %d >= n=%d", e.Elem, n)
		}
		sets[e.Set] = append(sets[e.Set], e.Elem)
	}
	return setsystem.New(n, sets)
}

// Write encodes the stream as text: a header "maxkcover <m> <n>" followed
// by one "set elem" pair per line.
func Write(w io.Writer, it Iterator, m, n int) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "maxkcover %d %d\n", m, n); err != nil {
		return err
	}
	for {
		e, ok := it.Next()
		if !ok {
			break
		}
		if _, err := fmt.Fprintf(bw, "%d %d\n", e.Set, e.Elem); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read decodes a stream file written by Write, returning the edges and the
// declared dimensions. It tolerates CRLF line endings and a final edge
// line without a trailing newline (files hand-edited or produced on
// Windows round-trip cleanly); blank lines are skipped.
func Read(r io.Reader) (*Slice, int, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		err := sc.Err()
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return nil, 0, 0, fmt.Errorf("stream: bad header: %w", err)
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 3 || fields[0] != "maxkcover" {
		return nil, 0, 0, fmt.Errorf("stream: bad header %q (want \"maxkcover <m> <n>\")", sc.Text())
	}
	m, errM := strconv.Atoi(fields[1])
	n, errN := strconv.Atoi(fields[2])
	if errM != nil || errN != nil || m < 0 || n < 0 {
		return nil, 0, 0, fmt.Errorf("stream: bad header dims %q", sc.Text())
	}
	var edges []Edge
	line := 1
	for sc.Scan() {
		line++
		text := sc.Text()
		if strings.TrimSpace(text) == "" {
			continue
		}
		f := strings.Fields(text)
		if len(f) != 2 {
			return nil, 0, 0, fmt.Errorf("stream: bad edge line %d: %q", line, text)
		}
		s64, errS := strconv.ParseUint(f[0], 10, 32)
		e64, errE := strconv.ParseUint(f[1], 10, 32)
		if errS != nil || errE != nil {
			return nil, 0, 0, fmt.Errorf("stream: bad edge line %d: %q", line, text)
		}
		s, e := uint32(s64), uint32(e64)
		if int(s) >= m || int(e) >= n {
			return nil, 0, 0, fmt.Errorf("stream: edge (%d,%d) out of declared bounds (%d,%d)", s, e, m, n)
		}
		edges = append(edges, Edge{Set: s, Elem: e})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, 0, fmt.Errorf("stream: read: %w", err)
	}
	return FromEdges(edges), m, n, nil
}

// Counting wraps an Iterator and counts completed passes; tests use it to
// assert an algorithm reads its input exactly once.
type Counting struct {
	inner  Iterator
	Passes int // completed passes (incremented on Reset after any reads and at exhaustion)
	read   bool
	done   bool
}

// NewCounting wraps it.
func NewCounting(it Iterator) *Counting { return &Counting{inner: it} }

// Next forwards to the wrapped iterator.
func (c *Counting) Next() (Edge, bool) {
	e, ok := c.inner.Next()
	if ok {
		c.read = true
		c.done = false
	} else if !c.done {
		c.done = true
		if c.read {
			c.Passes++
		}
	}
	return e, ok
}

// Reset rewinds and, if the current pass read anything without reaching the
// end, counts it as a pass.
func (c *Counting) Reset() {
	if c.read && !c.done {
		c.Passes++
	}
	c.read = false
	c.done = false
	c.inner.Reset()
}

// Digest returns a 64-bit FNV-1a digest of the edge sequence — order
// matters. The scenario harness records it so two runs of the same seeded
// spec can prove they drove the identical workload.
func Digest(edges []Edge) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, e := range edges {
		for shift := 0; shift < 32; shift += 8 {
			h = (h ^ uint64(byte(e.Set>>shift))) * prime
		}
		for shift := 0; shift < 32; shift += 8 {
			h = (h ^ uint64(byte(e.Elem>>shift))) * prime
		}
	}
	return h
}
