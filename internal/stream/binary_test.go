package stream

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"streamcover/internal/setsystem"
)

func TestBinaryRoundTrip(t *testing.T) {
	ss := setsystem.MustNew(5, [][]uint32{{0, 1, 2}, {2, 3}, {4}})
	it := Linearize(ss, Shuffled, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, it, ss.M(), ss.N); err != nil {
		t.Fatal(err)
	}
	got, m, n, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != ss.M() || n != ss.N {
		t.Errorf("dims (%d,%d)", m, n)
	}
	it.Reset()
	if !reflect.DeepEqual(got.Edges(), Collect(it)) {
		t.Error("binary round trip changed edges")
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, FromEdges(nil), 3, 4); err != nil {
		t.Fatal(err)
	}
	s, m, n, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 || n != 4 || s.Len() != 0 {
		t.Errorf("empty round trip: m=%d n=%d len=%d", m, n, s.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("MK"),
		[]byte("XXXX"),
		[]byte("MKC1"),                     // missing dims
		append([]byte("MKC1"), 2, 2, 5, 0), // set 5 >= m=2
		append([]byte("MKC1"), 2, 2, 0, 5), // elem 5 >= n=2
		append([]byte("MKC1"), 2, 2, 0),    // dangling set without elem
	}
	for i, c := range cases {
		if _, _, _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadAutoSniffsBothFormats(t *testing.T) {
	ss := setsystem.MustNew(4, [][]uint32{{0, 1}, {2, 3}})
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, Linearize(ss, SetArrival, nil), ss.M(), ss.N); err != nil {
		t.Fatal(err)
	}
	if err := Write(&txt, Linearize(ss, SetArrival, nil), ss.M(), ss.N); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"binary": &bin, "text": &txt} {
		s, m, n, err := ReadAuto(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m != 2 || n != 4 || s.Len() != 4 {
			t.Errorf("%s: m=%d n=%d len=%d", name, m, n, s.Len())
		}
	}
	if _, _, _, err := ReadAuto(strings.NewReader("x")); err == nil {
		t.Error("1-byte input accepted")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sets := make([][]uint32, 500)
	for i := range sets {
		for j := 0; j < 20; j++ {
			sets[i] = append(sets[i], uint32(rng.Intn(10000)))
		}
	}
	ss := setsystem.MustNew(10000, sets)
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, Linearize(ss, SetArrival, nil), ss.M(), ss.N); err != nil {
		t.Fatal(err)
	}
	if err := Write(&txt, Linearize(ss, SetArrival, nil), ss.M(), ss.N); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Errorf("binary %d bytes >= text %d bytes", bin.Len(), txt.Len())
	}
}
