package stream

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"streamcover/internal/setsystem"
)

func TestBinaryRoundTrip(t *testing.T) {
	ss := setsystem.MustNew(5, [][]uint32{{0, 1, 2}, {2, 3}, {4}})
	it := Linearize(ss, Shuffled, rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, it, ss.M(), ss.N); err != nil {
		t.Fatal(err)
	}
	got, m, n, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != ss.M() || n != ss.N {
		t.Errorf("dims (%d,%d)", m, n)
	}
	it.Reset()
	if !reflect.DeepEqual(got.Edges(), Collect(it)) {
		t.Error("binary round trip changed edges")
	}
}

func TestBinaryEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, FromEdges(nil), 3, 4); err != nil {
		t.Fatal(err)
	}
	s, m, n, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 || n != 4 || s.Len() != 0 {
		t.Errorf("empty round trip: m=%d n=%d len=%d", m, n, s.Len())
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("MK"),
		[]byte("XXXX"),
		[]byte("MKC1"),                     // missing dims
		append([]byte("MKC1"), 2, 2, 5, 0), // set 5 >= m=2
		append([]byte("MKC1"), 2, 2, 0, 5), // elem 5 >= n=2
		append([]byte("MKC1"), 2, 2, 0),    // dangling set without elem
	}
	for i, c := range cases {
		if _, _, _, err := ReadBinary(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadAutoSniffsBothFormats(t *testing.T) {
	ss := setsystem.MustNew(4, [][]uint32{{0, 1}, {2, 3}})
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, Linearize(ss, SetArrival, nil), ss.M(), ss.N); err != nil {
		t.Fatal(err)
	}
	if err := Write(&txt, Linearize(ss, SetArrival, nil), ss.M(), ss.N); err != nil {
		t.Fatal(err)
	}
	for name, buf := range map[string]*bytes.Buffer{"binary": &bin, "text": &txt} {
		s, m, n, err := ReadAuto(buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m != 2 || n != 4 || s.Len() != 4 {
			t.Errorf("%s: m=%d n=%d len=%d", name, m, n, s.Len())
		}
	}
	if _, _, _, err := ReadAuto(strings.NewReader("x")); err == nil {
		t.Error("1-byte input accepted")
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sets := make([][]uint32, 500)
	for i := range sets {
		for j := 0; j < 20; j++ {
			sets[i] = append(sets[i], uint32(rng.Intn(10000)))
		}
	}
	ss := setsystem.MustNew(10000, sets)
	var bin, txt bytes.Buffer
	if err := WriteBinary(&bin, Linearize(ss, SetArrival, nil), ss.M(), ss.N); err != nil {
		t.Fatal(err)
	}
	if err := Write(&txt, Linearize(ss, SetArrival, nil), ss.M(), ss.N); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= txt.Len() {
		t.Errorf("binary %d bytes >= text %d bytes", bin.Len(), txt.Len())
	}
}

func TestAppendDecodeBinaryRoundTrip(t *testing.T) {
	edges := []Edge{{0, 0}, {7, 123}, {999, 49999}, {7, 123}}
	blob := AppendBinary(nil, edges, 1000, 50000)
	got, m, n, err := DecodeBinary(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m != 1000 || n != 50000 {
		t.Errorf("dims (%d,%d)", m, n)
	}
	if !reflect.DeepEqual(got, edges) {
		t.Errorf("round trip %v != %v", got, edges)
	}
	// The in-memory encoding is the same MKC1 format the streaming codec
	// reads.
	viaReader, rm, rn, err := ReadBinary(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if rm != m || rn != n || !reflect.DeepEqual(viaReader.Edges(), edges) {
		t.Error("AppendBinary blob not readable by ReadBinary")
	}
	// And WriteBinary output is decodable by DecodeBinary.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, FromEdges(edges), 1000, 50000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), blob) {
		t.Error("AppendBinary and WriteBinary encodings differ")
	}
}

func TestDecodeBinaryRejectsGarbage(t *testing.T) {
	good := AppendBinary(nil, []Edge{{1, 2}, {3, 4}}, 10, 10)
	cases := map[string][]byte{
		"empty":          nil,
		"short magic":    good[:3],
		"bad magic":      []byte("XKC1ab"),
		"truncated dims": good[:5],
		"truncated edge": good[:len(good)-1],
		"out of bounds":  AppendBinary(nil, []Edge{{10, 0}}, 10, 10),
	}
	for name, blob := range cases {
		if _, _, _, err := DecodeBinary(blob); err == nil {
			t.Errorf("DecodeBinary accepted %s", name)
		}
	}
}

// BenchmarkBinaryDecode measures the MKC1 codec's in-memory decode rate —
// the per-batch cost on kcoverd's ingest path.
func BenchmarkBinaryDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const m, n, count = 4096, 1 << 20, 65536
	edges := make([]Edge, count)
	for i := range edges {
		edges[i] = Edge{Set: uint32(rng.Intn(m)), Elem: uint32(rng.Intn(n))}
	}
	blob := AppendBinary(nil, edges, m, n)
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, _, err := DecodeBinary(blob)
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != count {
			b.Fatal("short decode")
		}
	}
	b.ReportMetric(float64(count*b.N)/b.Elapsed().Seconds(), "edges/s")
}
