package stream

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzRead drives the text codec with arbitrary bytes: it must never
// panic, and any stream it accepts must re-encode to something it accepts
// again with identical edges (decode∘encode = identity on the accepted
// language).
func FuzzRead(f *testing.F) {
	f.Add("maxkcover 2 3\n0 0\n1 2\n")
	f.Add("maxkcover 1 1\n")
	f.Add("")
	f.Add("maxkcover 2 2\n9 9\n")
	f.Add("not a stream at all")
	f.Add("maxkcover -1 -1\n")
	f.Fuzz(func(t *testing.T, input string) {
		s, m, n, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input: fine, as long as no panic
		}
		var buf bytes.Buffer
		if err := Write(&buf, s, m, n); err != nil {
			t.Fatalf("accepted stream failed to encode: %v", err)
		}
		s.Reset()
		want := Collect(s)
		s2, m2, n2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if m2 != m || n2 != n {
			t.Fatalf("dims changed: (%d,%d) -> (%d,%d)", m, n, m2, n2)
		}
		if got := Collect(s2); !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
			t.Fatalf("edges changed after round trip")
		}
	})
}
