package stream

import (
	"encoding/binary"
	"fmt"
)

// columnsMagic identifies the columnar batch format ("MKC2"). It shares
// the MKC1 header shape (magic, uvarint m, uvarint n) so decoders sniff
// the fourth magic byte to pick a layout, but lays the edges out as two
// fixed-width ID columns instead of interleaved uvarint pairs:
//
//	4 bytes  magic "MKC2"
//	uvarint  m
//	uvarint  n
//	uvarint  count
//	count × 4 bytes  little-endian set IDs
//	count × 4 bytes  little-endian element IDs
//
// The column layout is the decode-side contract: a consumer hands the two
// contiguous columns straight to the prepass interners without ever
// materializing per-edge structs, and the fixed width makes the decode a
// bounds-checked bulk copy instead of a data-dependent uvarint walk.
var columnsMagic = [4]byte{'M', 'K', 'C', '2'}

// Columns is one edge batch in struct-of-arrays form: Sets[i] and
// Elems[i] are edge i's endpoint IDs. It is the zero-transform wire
// representation — decoders fill it in place and the ingest hot path
// consumes the columns directly.
type Columns struct {
	Sets  []uint32
	Elems []uint32
}

// Len returns the number of edges held.
func (c *Columns) Len() int { return len(c.Sets) }

// Reset empties the columns, retaining capacity.
func (c *Columns) Reset() {
	c.Sets = c.Sets[:0]
	c.Elems = c.Elems[:0]
}

// Append records one edge.
func (c *Columns) Append(set, elem uint32) {
	c.Sets = append(c.Sets, set)
	c.Elems = append(c.Elems, elem)
}

// AppendBinaryColumns appends the MKC2 encoding of an edge batch in
// column form to buf and returns the extended buffer. sets and elems must
// have equal length; the encoder writes them verbatim, so the client-side
// layout IS the wire layout.
func AppendBinaryColumns(buf []byte, sets, elems []uint32, m, n int) []byte {
	if len(sets) != len(elems) {
		panic(fmt.Sprintf("stream: column length mismatch (%d sets, %d elems)", len(sets), len(elems)))
	}
	buf = append(buf, columnsMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(m))
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = binary.AppendUvarint(buf, uint64(len(sets)))
	for _, s := range sets {
		buf = binary.LittleEndian.AppendUint32(buf, s)
	}
	for _, e := range elems {
		buf = binary.LittleEndian.AppendUint32(buf, e)
	}
	return buf
}

// DecodeBinaryColumnsInto decodes an in-memory MKC2 blob into cols,
// reusing its backing arrays, and returns the blob's declared dims. Every
// ID is validated against those dims, matching DecodeBinary's contract.
// The payload must hold exactly count edges — trailing bytes are an error.
func DecodeBinaryColumnsInto(data []byte, cols *Columns) (m, n int, err error) {
	if len(data) < 4 {
		return 0, 0, fmt.Errorf("stream: bad binary magic: truncated")
	}
	if [4]byte(data[:4]) != columnsMagic {
		return 0, 0, fmt.Errorf("stream: not a columnar stream (magic %q)", data[:4])
	}
	rest := data[4:]
	next := func(what string) (uint64, error) {
		v, w := binary.Uvarint(rest)
		if w <= 0 {
			return 0, fmt.Errorf("stream: bad %s: truncated uvarint", what)
		}
		rest = rest[w:]
		return v, nil
	}
	m64, err := next("m")
	if err != nil {
		return 0, 0, err
	}
	n64, err := next("n")
	if err != nil {
		return 0, 0, err
	}
	if m64 > 1<<31 || n64 > 1<<31 {
		return 0, 0, fmt.Errorf("stream: implausible dims (%d, %d)", m64, n64)
	}
	count, err := next("count")
	if err != nil {
		return 0, 0, err
	}
	if count > uint64(len(rest))/8 || count*8 != uint64(len(rest)) {
		return 0, 0, fmt.Errorf("stream: columnar payload %d bytes, want %d edges × 8", len(rest), count)
	}
	cols.Sets = growU32(cols.Sets, int(count))
	cols.Elems = growU32(cols.Elems, int(count))
	setBytes, elemBytes := rest[:count*4], rest[count*4:]
	for i := range cols.Sets {
		s := binary.LittleEndian.Uint32(setBytes[4*i:])
		if uint64(s) >= m64 {
			return 0, 0, fmt.Errorf("stream: set %d out of bounds (m=%d)", s, m64)
		}
		cols.Sets[i] = s
	}
	for i := range cols.Elems {
		e := binary.LittleEndian.Uint32(elemBytes[4*i:])
		if uint64(e) >= n64 {
			return 0, 0, fmt.Errorf("stream: elem %d out of bounds (n=%d)", e, n64)
		}
		cols.Elems[i] = e
	}
	return int(m64), int(n64), nil
}

// DecodeBinaryInto decodes either batch encoding — row MKC1 or columnar
// MKC2, sniffed from the magic — into cols without allocating edge
// structs. It is the server's single ingest decode entry point: legacy
// row batches and columnar batches land in the same arenas and are
// indistinguishable downstream.
func DecodeBinaryInto(data []byte, cols *Columns) (m, n int, err error) {
	if len(data) >= 4 && [4]byte(data[:4]) == columnsMagic {
		return DecodeBinaryColumnsInto(data, cols)
	}
	if len(data) < 4 {
		return 0, 0, fmt.Errorf("stream: bad binary magic: truncated")
	}
	if [4]byte(data[:4]) != binaryMagic {
		return 0, 0, fmt.Errorf("stream: not a binary stream (magic %q)", data[:4])
	}
	rest := data[4:]
	next := func(what string) (uint64, error) {
		v, w := binary.Uvarint(rest)
		if w <= 0 {
			return 0, fmt.Errorf("stream: bad %s: truncated uvarint", what)
		}
		rest = rest[w:]
		return v, nil
	}
	m64, err := next("m")
	if err != nil {
		return 0, 0, err
	}
	n64, err := next("n")
	if err != nil {
		return 0, 0, err
	}
	if m64 > 1<<31 || n64 > 1<<31 {
		return 0, 0, fmt.Errorf("stream: implausible dims (%d, %d)", m64, n64)
	}
	cols.Sets = growU32(cols.Sets, 0)
	cols.Elems = growU32(cols.Elems, 0)
	for len(rest) > 0 {
		s, err := next("edge set")
		if err != nil {
			return 0, 0, err
		}
		e, err := next("edge elem")
		if err != nil {
			return 0, 0, err
		}
		if s >= m64 || e >= n64 {
			return 0, 0, fmt.Errorf("stream: edge (%d,%d) out of bounds (%d,%d)", s, e, m64, n64)
		}
		cols.Sets = append(cols.Sets, uint32(s))
		cols.Elems = append(cols.Elems, uint32(e))
	}
	return int(m64), int(n64), nil
}

// growU32 returns a slice of length n reusing dst's storage when possible.
func growU32(dst []uint32, n int) []uint32 {
	if cap(dst) < n {
		return make([]uint32, n)
	}
	return dst[:n]
}
