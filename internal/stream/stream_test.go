package stream

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"streamcover/internal/setsystem"
)

func testSystem() *setsystem.SetSystem {
	return setsystem.MustNew(5, [][]uint32{{0, 1, 2}, {2, 3}, {4}})
}

func sortedEdges(edges []Edge) []Edge {
	cp := append([]Edge(nil), edges...)
	sort.Slice(cp, func(i, j int) bool {
		if cp[i].Set != cp[j].Set {
			return cp[i].Set < cp[j].Set
		}
		return cp[i].Elem < cp[j].Elem
	})
	return cp
}

func TestLinearizeOrdersSameMultiset(t *testing.T) {
	ss := testSystem()
	want := sortedEdges(Collect(Linearize(ss, SetArrival, nil)))
	if len(want) != ss.Edges() {
		t.Fatalf("set-arrival stream has %d edges, want %d", len(want), ss.Edges())
	}
	rng := rand.New(rand.NewSource(1))
	for _, order := range []Order{Shuffled, ElementMajor, RoundRobin} {
		got := sortedEdges(Collect(Linearize(ss, order, rng)))
		if !reflect.DeepEqual(got, want) {
			t.Errorf("order %d yields different edge multiset", order)
		}
	}
}

func TestLinearizeSetArrivalContiguous(t *testing.T) {
	edges := Collect(Linearize(testSystem(), SetArrival, nil))
	lastSeen := -1
	seen := map[uint32]bool{}
	for _, e := range edges {
		if int(e.Set) != lastSeen {
			if seen[e.Set] {
				t.Fatalf("set %d appears non-contiguously", e.Set)
			}
			seen[e.Set] = true
			lastSeen = int(e.Set)
		}
	}
}

func TestLinearizeElementMajorGrouped(t *testing.T) {
	edges := Collect(Linearize(testSystem(), ElementMajor, nil))
	lastElem := -1
	seen := map[uint32]bool{}
	for _, e := range edges {
		if int(e.Elem) != lastElem {
			if seen[e.Elem] {
				t.Fatalf("element %d appears non-contiguously", e.Elem)
			}
			seen[e.Elem] = true
			lastElem = int(e.Elem)
		}
	}
}

func TestLinearizeRoundRobinInterleaves(t *testing.T) {
	edges := Collect(Linearize(testSystem(), RoundRobin, nil))
	// First cycle must deal one edge from each of the three sets.
	if edges[0].Set != 0 || edges[1].Set != 1 || edges[2].Set != 2 {
		t.Errorf("round-robin first cycle: %+v", edges[:3])
	}
}

func TestLinearizeShuffledNeedsRng(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Shuffled without rng did not panic")
		}
	}()
	Linearize(testSystem(), Shuffled, nil)
}

func TestLinearizeUnknownOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown order did not panic")
		}
	}()
	Linearize(testSystem(), Order(99), nil)
}

func TestToSetSystemRoundTrip(t *testing.T) {
	ss := testSystem()
	rng := rand.New(rand.NewSource(2))
	it := Linearize(ss, Shuffled, rng)
	back, err := ToSetSystem(it, ss.M(), ss.N)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Sets, ss.Sets) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", back.Sets, ss.Sets)
	}
}

func TestToSetSystemRejectsOutOfBounds(t *testing.T) {
	if _, err := ToSetSystem(FromEdges([]Edge{{Set: 5, Elem: 0}}), 3, 3); err == nil {
		t.Error("set id out of bounds accepted")
	}
	if _, err := ToSetSystem(FromEdges([]Edge{{Set: 0, Elem: 7}}), 3, 3); err == nil {
		t.Error("element id out of bounds accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ss := testSystem()
	it := Linearize(ss, SetArrival, nil)
	var buf bytes.Buffer
	if err := Write(&buf, it, ss.M(), ss.N); err != nil {
		t.Fatal(err)
	}
	got, m, n, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m != ss.M() || n != ss.N {
		t.Errorf("dims (%d,%d), want (%d,%d)", m, n, ss.M(), ss.N)
	}
	it.Reset()
	if !reflect.DeepEqual(got.Edges(), Collect(it)) {
		t.Error("codec round trip changed edges")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a header\n",
		"maxkcover 2 2\n0 zebra\n",
		"maxkcover 2 2\n5 0\n",
		"maxkcover 2 2\n0 5\n",
	}
	for _, c := range cases {
		if _, _, _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read accepted %q", c)
		}
	}
}

func TestReadFinalLineWithoutNewline(t *testing.T) {
	s, m, n, err := Read(strings.NewReader("maxkcover 3 4\n0 1\n2 3"))
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 || n != 4 || s.Len() != 2 {
		t.Errorf("got m=%d n=%d len=%d, want 3 4 2", m, n, s.Len())
	}
	if e := s.Edges()[1]; e != (Edge{Set: 2, Elem: 3}) {
		t.Errorf("final unterminated edge = %v, want {2 3}", e)
	}
}

func TestReadToleratesCRLF(t *testing.T) {
	s, m, n, err := Read(strings.NewReader("maxkcover 3 4\r\n0 1\r\n2 3\r\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m != 3 || n != 4 || s.Len() != 2 {
		t.Errorf("got m=%d n=%d len=%d, want 3 4 2", m, n, s.Len())
	}
	if e := s.Edges()[0]; e != (Edge{Set: 0, Elem: 1}) {
		t.Errorf("CRLF edge = %v, want {0 1}", e)
	}
}

func TestReadRejectsTruncatedHeader(t *testing.T) {
	for _, c := range []string{"maxkcover\n", "maxkcover 5\n", "maxkcover 5 \n", "maxkcover 5"} {
		if _, _, _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read accepted truncated header %q", c)
		}
	}
}

func TestSliceIterator(t *testing.T) {
	s := FromEdges([]Edge{{0, 1}, {1, 2}})
	if s.Len() != 2 {
		t.Errorf("Len() = %d", s.Len())
	}
	e, ok := s.Next()
	if !ok || e != (Edge{0, 1}) {
		t.Errorf("first Next = %+v, %v", e, ok)
	}
	s.Next()
	if _, ok := s.Next(); ok {
		t.Error("Next past end returned ok")
	}
	s.Reset()
	if e, ok := s.Next(); !ok || e != (Edge{0, 1}) {
		t.Error("Reset did not rewind")
	}
}

func TestCountingPasses(t *testing.T) {
	c := NewCounting(FromEdges([]Edge{{0, 0}, {1, 1}}))
	if c.Passes != 0 {
		t.Fatal("fresh counter nonzero")
	}
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	if c.Passes != 1 {
		t.Errorf("after one drain Passes = %d, want 1", c.Passes)
	}
	// Extra Next calls at exhaustion must not double count.
	c.Next()
	c.Next()
	if c.Passes != 1 {
		t.Errorf("exhausted Next inflated Passes to %d", c.Passes)
	}
	c.Reset()
	for {
		if _, ok := c.Next(); !ok {
			break
		}
	}
	if c.Passes != 2 {
		t.Errorf("after second drain Passes = %d, want 2", c.Passes)
	}
	// Partial pass then Reset counts the partial pass.
	c.Reset()
	c.Next()
	c.Reset()
	if c.Passes != 3 {
		t.Errorf("partial pass not counted: Passes = %d, want 3", c.Passes)
	}
}

func TestCountingEmptyStream(t *testing.T) {
	c := NewCounting(FromEdges(nil))
	if _, ok := c.Next(); ok {
		t.Fatal("empty stream yielded an edge")
	}
	if c.Passes != 0 {
		t.Errorf("empty stream counted a pass: %d", c.Passes)
	}
}

func TestDigestOrderSensitive(t *testing.T) {
	a := []Edge{{1, 2}, {3, 4}}
	b := []Edge{{3, 4}, {1, 2}}
	if Digest(a) == Digest(b) {
		t.Error("digest should depend on order")
	}
	if Digest(a) != Digest([]Edge{{1, 2}, {3, 4}}) {
		t.Error("digest not deterministic")
	}
	if Digest(nil) != Digest([]Edge{}) {
		t.Error("empty digests differ")
	}
}
