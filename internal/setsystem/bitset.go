package setsystem

import "math/bits"

// Bitset is a fixed-capacity bit vector over element IDs [0, n).
type Bitset []uint64

// NewBitset allocates a bitset with capacity for n bits.
func NewBitset(n int) Bitset {
	return make(Bitset, (n+63)/64)
}

// Set marks bit i.
func (b Bitset) Set(i uint32) { b[i>>6] |= 1 << (i & 63) }

// Get reports bit i.
func (b Bitset) Get(i uint32) bool { return b[i>>6]&(1<<(i&63)) != 0 }

// Count returns the number of set bits.
func (b Bitset) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Or sets b |= other. The bitsets must have equal capacity.
func (b Bitset) Or(other Bitset) {
	for i, w := range other {
		b[i] |= w
	}
}

// Clone returns a copy.
func (b Bitset) Clone() Bitset {
	c := make(Bitset, len(b))
	copy(c, b)
	return c
}

// Clear zeroes the bitset in place.
func (b Bitset) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// AndNotCount returns |other \ b|: the number of bits set in other but not
// in b — the marginal gain of adding `other` to coverage b.
func (b Bitset) AndNotCount(other Bitset) int {
	c := 0
	for i, w := range other {
		c += bits.OnesCount64(w &^ b[i])
	}
	return c
}
