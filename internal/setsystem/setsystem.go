// Package setsystem provides the in-memory Max k-Cover instance model used
// as ground truth across the repository: exact optima (branch and bound)
// and the classic greedy of Nemhauser–Wolsey–Fisher with its 1-1/e
// guarantee, which the paper's Introduction takes as the offline baseline.
package setsystem

import (
	"fmt"
	"sort"
)

// SetSystem is an explicit (U, F) instance. Elements are 0..N-1; sets are
// stored as sorted, deduplicated element-ID slices.
type SetSystem struct {
	N    int        // |U|
	Sets [][]uint32 // m sets; Sets[i] sorted ascending, unique
}

// New builds a SetSystem, normalizing each set (sorting, deduplicating) and
// validating element IDs against n.
func New(n int, sets [][]uint32) (*SetSystem, error) {
	if n < 0 {
		return nil, fmt.Errorf("setsystem: negative universe size %d", n)
	}
	norm := make([][]uint32, len(sets))
	for i, s := range sets {
		cp := append([]uint32(nil), s...)
		sort.Slice(cp, func(a, b int) bool { return cp[a] < cp[b] })
		out := cp[:0]
		var prev uint32
		for j, e := range cp {
			if int(e) >= n {
				return nil, fmt.Errorf("setsystem: set %d contains element %d >= n=%d", i, e, n)
			}
			if j > 0 && e == prev {
				continue
			}
			out = append(out, e)
			prev = e
		}
		norm[i] = out
	}
	return &SetSystem{N: n, Sets: norm}, nil
}

// MustNew is New that panics on error, for tests and generators with
// known-valid input.
func MustNew(n int, sets [][]uint32) *SetSystem {
	ss, err := New(n, sets)
	if err != nil {
		panic(err)
	}
	return ss
}

// M returns the number of sets.
func (ss *SetSystem) M() int { return len(ss.Sets) }

// Edges returns the total number of (set, element) incidences — the
// edge-arrival stream length.
func (ss *SetSystem) Edges() int {
	t := 0
	for _, s := range ss.Sets {
		t += len(s)
	}
	return t
}

// SetBitset materializes set i as a bitset over U.
func (ss *SetSystem) SetBitset(i int) Bitset {
	b := NewBitset(ss.N)
	for _, e := range ss.Sets[i] {
		b.Set(e)
	}
	return b
}

// Coverage computes |∪_{i∈ids} Sets[i]|. Duplicate IDs are harmless.
func (ss *SetSystem) Coverage(ids []int) int {
	b := NewBitset(ss.N)
	for _, i := range ids {
		for _, e := range ss.Sets[i] {
			b.Set(e)
		}
	}
	return b.Count()
}

// ElementFrequencies returns freq[e] = number of sets containing element e.
func (ss *SetSystem) ElementFrequencies() []int {
	freq := make([]int, ss.N)
	for _, s := range ss.Sets {
		for _, e := range s {
			freq[e]++
		}
	}
	return freq
}

// CommonElements returns the elements whose frequency is at least thresh —
// the λ-common elements of Definition 2.1 for thresh = c·m·polylog/λ.
func (ss *SetSystem) CommonElements(thresh int) []uint32 {
	var out []uint32
	for e, f := range ss.ElementFrequencies() {
		if f >= thresh {
			out = append(out, uint32(e))
		}
	}
	return out
}
