package setsystem

import "sort"

// Exact computes an optimal k-cover by branch and bound. Intended for
// ground truth on small instances (roughly m ≤ 30 or k small); cost grows
// as C(m, k) in the worst case but coverage-sorted pruning usually cuts
// deep. Returns chosen set indices and the optimal coverage.
func (ss *SetSystem) Exact(k int) ([]int, int) {
	if k <= 0 || ss.M() == 0 {
		return nil, 0
	}
	if k > ss.M() {
		k = ss.M()
	}
	// Order sets by descending size; the prefix-size prune is tightest then.
	order := make([]int, ss.M())
	for i := range order {
		order[i] = i
	}
	setBits := make([]Bitset, ss.M())
	for i := range ss.Sets {
		setBits[i] = ss.SetBitset(i)
	}
	sort.Slice(order, func(a, b int) bool {
		return len(ss.Sets[order[a]]) > len(ss.Sets[order[b]])
	})
	// Greedy seeds the incumbent so pruning starts strong.
	bestIDs, best := ss.Greedy(k)
	bestIDs = append([]int(nil), bestIDs...)

	cur := make([]int, 0, k)
	covered := NewBitset(ss.N)
	var rec func(pos, count, coveredCount int)
	rec = func(pos, count, coveredCount int) {
		if coveredCount > best {
			best = coveredCount
			bestIDs = append(bestIDs[:0], cur...)
		}
		if count == k || pos == len(order) {
			return
		}
		// Upper bound: current coverage plus sizes of the next (k-count)
		// largest remaining sets (sizes are non-increasing along order).
		ub := coveredCount
		for j := pos; j < len(order) && j < pos+(k-count); j++ {
			ub += len(ss.Sets[order[j]])
		}
		if ub <= best {
			return
		}
		id := order[pos]
		gain := covered.AndNotCount(setBits[id])
		if gain > 0 || count == 0 {
			// Take id.
			snapshot := covered.Clone()
			covered.Or(setBits[id])
			cur = append(cur, id)
			rec(pos+1, count+1, coveredCount+gain)
			cur = cur[:len(cur)-1]
			copy(covered, snapshot)
		}
		// Skip id.
		rec(pos+1, count, coveredCount)
	}
	rec(0, 0, 0)
	if len(bestIDs) > k {
		bestIDs = bestIDs[:k]
	}
	return bestIDs, best
}
