package setsystem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewNormalizes(t *testing.T) {
	ss, err := New(10, [][]uint32{{3, 1, 3, 2, 1}, {}, {9}})
	if err != nil {
		t.Fatal(err)
	}
	if got := ss.Sets[0]; len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("set 0 not normalized: %v", got)
	}
	if len(ss.Sets[1]) != 0 {
		t.Errorf("empty set mangled: %v", ss.Sets[1])
	}
	if ss.M() != 3 || ss.N != 10 {
		t.Errorf("dims (%d, %d), want (3, 10)", ss.M(), ss.N)
	}
}

func TestNewRejectsOutOfRange(t *testing.T) {
	if _, err := New(5, [][]uint32{{5}}); err == nil {
		t.Error("element == n accepted")
	}
	if _, err := New(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
}

func TestCoverageAndEdges(t *testing.T) {
	ss := MustNew(6, [][]uint32{{0, 1, 2}, {2, 3}, {4, 5}})
	if c := ss.Coverage([]int{0, 1}); c != 4 {
		t.Errorf("Coverage({0,1}) = %d, want 4", c)
	}
	if c := ss.Coverage([]int{0, 0}); c != 3 {
		t.Errorf("Coverage with duplicate ids = %d, want 3", c)
	}
	if c := ss.Coverage(nil); c != 0 {
		t.Errorf("Coverage(nil) = %d, want 0", c)
	}
	if e := ss.Edges(); e != 7 {
		t.Errorf("Edges() = %d, want 7", e)
	}
}

func TestElementFrequenciesAndCommon(t *testing.T) {
	ss := MustNew(4, [][]uint32{{0, 1}, {0, 2}, {0, 3}})
	freq := ss.ElementFrequencies()
	want := []int{3, 1, 1, 1}
	for e, f := range want {
		if freq[e] != f {
			t.Errorf("freq[%d] = %d, want %d", e, freq[e], f)
		}
	}
	common := ss.CommonElements(2)
	if len(common) != 1 || common[0] != 0 {
		t.Errorf("CommonElements(2) = %v, want [0]", common)
	}
	if got := ss.CommonElements(100); got != nil {
		t.Errorf("CommonElements(100) = %v, want nil", got)
	}
}

func TestBitsetOps(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Error("Set/Get wrong across word boundaries")
	}
	if b.Count() != 3 {
		t.Errorf("Count() = %d, want 3", b.Count())
	}
	c := b.Clone()
	c.Set(5)
	if b.Get(5) {
		t.Error("Clone aliases storage")
	}
	other := NewBitset(130)
	other.Set(5)
	other.Set(129)
	if g := b.AndNotCount(other); g != 1 {
		t.Errorf("AndNotCount = %d, want 1 (only bit 5 new)", g)
	}
	b.Or(other)
	if b.Count() != 4 {
		t.Errorf("after Or Count() = %d, want 4", b.Count())
	}
	b.Clear()
	if b.Count() != 0 {
		t.Error("Clear left bits set")
	}
}

func TestGreedyKnownInstance(t *testing.T) {
	// Classic greedy-suboptimal instance: greedy picks the big middle set
	// first and ends below optimum for k=2.
	ss := MustNew(8, [][]uint32{
		{0, 1, 2, 3, 4}, // big middle
		{0, 1, 2, 5},    // left
		{3, 4, 6, 7},    // right
	})
	picked, cov := ss.Greedy(2)
	if len(picked) != 2 || picked[0] != 0 {
		t.Errorf("greedy picks %v, want first pick = set 0", picked)
	}
	if cov != 7 {
		t.Errorf("greedy coverage %d, want 7", cov)
	}
	_, opt := ss.Exact(2)
	if opt != 8 {
		t.Errorf("exact coverage %d, want 8 (sets 1+2)", opt)
	}
}

func TestGreedyEdgeCases(t *testing.T) {
	ss := MustNew(3, [][]uint32{{0}, {1}})
	if p, c := ss.Greedy(0); p != nil || c != 0 {
		t.Error("Greedy(0) not empty")
	}
	if p, c := ss.Greedy(10); len(p) != 2 || c != 2 {
		t.Errorf("Greedy(k>m) = %v cov %d, want both sets cov 2", p, c)
	}
	empty := MustNew(3, nil)
	if p, c := empty.Greedy(2); p != nil || c != 0 {
		t.Error("Greedy on empty family not empty")
	}
	// All-empty sets: stop early.
	zs := MustNew(3, [][]uint32{{}, {}})
	if p, c := zs.Greedy(2); len(p) != 0 || c != 0 {
		t.Errorf("Greedy over empty sets picked %v cov %d", p, c)
	}
}

func TestLazyGreedyMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 20 + rng.Intn(60)
		m := 5 + rng.Intn(25)
		sets := make([][]uint32, m)
		for i := range sets {
			sz := 1 + rng.Intn(n/2)
			for j := 0; j < sz; j++ {
				sets[i] = append(sets[i], uint32(rng.Intn(n)))
			}
		}
		ss := MustNew(n, sets)
		k := 1 + rng.Intn(m)
		_, g := ss.Greedy(k)
		_, l := ss.LazyGreedy(k)
		if g != l {
			t.Fatalf("trial %d: greedy %d != lazy %d (n=%d m=%d k=%d)", trial, g, l, n, m, k)
		}
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(20)
		m := 4 + rng.Intn(8)
		sets := make([][]uint32, m)
		for i := range sets {
			sz := 1 + rng.Intn(n/2)
			for j := 0; j < sz; j++ {
				sets[i] = append(sets[i], uint32(rng.Intn(n)))
			}
		}
		ss := MustNew(n, sets)
		k := 1 + rng.Intn(3)
		_, got := ss.Exact(k)
		want := bruteForce(ss, k)
		if got != want {
			t.Fatalf("trial %d: Exact %d != brute force %d (n=%d m=%d k=%d)",
				trial, got, want, n, m, k)
		}
	}
}

// bruteForce enumerates all k-subsets.
func bruteForce(ss *SetSystem, k int) int {
	best := 0
	ids := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(ids) == k || start == ss.M() {
			if c := ss.Coverage(ids); c > best {
				best = c
			}
			if len(ids) == k {
				return
			}
		}
		if start == ss.M() {
			return
		}
		ids = append(ids, start)
		rec(start + 1)
		ids = ids[:len(ids)-1]
		rec(start + 1)
	}
	rec(0)
	return best
}

func TestGreedyApproximationGuarantee(t *testing.T) {
	// Property: greedy coverage >= (1-1/e) * optimal on random small
	// instances (greedy's guarantee; exact gives the optimum).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 12 + rng.Intn(20)
		m := 4 + rng.Intn(8)
		sets := make([][]uint32, m)
		for i := range sets {
			sz := 1 + rng.Intn(n/2)
			for j := 0; j < sz; j++ {
				sets[i] = append(sets[i], uint32(rng.Intn(n)))
			}
		}
		ss := MustNew(n, sets)
		k := 1 + rng.Intn(3)
		_, g := ss.Greedy(k)
		_, opt := ss.Exact(k)
		return float64(g) >= 0.63*float64(opt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExactReturnsValidIDs(t *testing.T) {
	ss := MustNew(10, [][]uint32{{0, 1}, {2, 3}, {0, 2}, {4}})
	ids, cov := ss.Exact(2)
	if len(ids) > 2 {
		t.Errorf("Exact returned %d ids for k=2", len(ids))
	}
	if got := ss.Coverage(ids); got != cov {
		t.Errorf("reported coverage %d != recomputed %d for ids %v", cov, got, ids)
	}
}

func TestSetBitsetRoundTrip(t *testing.T) {
	ss := MustNew(70, [][]uint32{{0, 63, 64, 69}})
	b := ss.SetBitset(0)
	if b.Count() != 4 || !b.Get(69) || !b.Get(0) {
		t.Errorf("SetBitset wrong: count %d", b.Count())
	}
}

func BenchmarkGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 2000, 500
	sets := make([][]uint32, m)
	for i := range sets {
		sz := 5 + rng.Intn(100)
		for j := 0; j < sz; j++ {
			sets[i] = append(sets[i], uint32(rng.Intn(n)))
		}
	}
	ss := MustNew(n, sets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.Greedy(20)
	}
}

func BenchmarkLazyGreedy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 2000, 500
	sets := make([][]uint32, m)
	for i := range sets {
		sz := 5 + rng.Intn(100)
		for j := 0; j < sz; j++ {
			sets[i] = append(sets[i], uint32(rng.Intn(n)))
		}
	}
	ss := MustNew(n, sets)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss.LazyGreedy(20)
	}
}
