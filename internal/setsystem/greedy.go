package setsystem

import "container/heap"

// Greedy runs the classic greedy algorithm [Nemhauser–Wolsey–Fisher '78]:
// k rounds, each picking the set with the largest marginal coverage gain.
// Returns the chosen set indices (in pick order) and their coverage. The
// approximation guarantee is 1-1/e, tight under P != NP (Feige '98).
func (ss *SetSystem) Greedy(k int) ([]int, int) {
	if k <= 0 || ss.M() == 0 {
		return nil, 0
	}
	if k > ss.M() {
		k = ss.M()
	}
	covered := NewBitset(ss.N)
	setBits := make([]Bitset, ss.M())
	for i := range ss.Sets {
		setBits[i] = ss.SetBitset(i)
	}
	picked := make([]int, 0, k)
	taken := make([]bool, ss.M())
	total := 0
	for r := 0; r < k; r++ {
		best, bestGain := -1, 0
		for i := range setBits {
			if taken[i] {
				continue
			}
			if g := covered.AndNotCount(setBits[i]); g > bestGain {
				best, bestGain = i, g
			}
		}
		if best < 0 { // no set adds anything
			break
		}
		covered.Or(setBits[best])
		taken[best] = true
		picked = append(picked, best)
		total += bestGain
	}
	return picked, total
}

// LazyGreedy computes the same solution as Greedy using lazy marginal-gain
// evaluation (Minoux's accelerated greedy): stale upper bounds sit in a
// max-heap and are re-evaluated only when popped. Output is identical to
// Greedy up to tie-breaking; coverage value always matches.
func (ss *SetSystem) LazyGreedy(k int) ([]int, int) {
	if k <= 0 || ss.M() == 0 {
		return nil, 0
	}
	if k > ss.M() {
		k = ss.M()
	}
	covered := NewBitset(ss.N)
	setBits := make([]Bitset, ss.M())
	h := make(gainHeap, 0, ss.M())
	for i := range ss.Sets {
		setBits[i] = ss.SetBitset(i)
		h = append(h, gainEntry{set: i, gain: len(ss.Sets[i]), round: 0})
	}
	heap.Init(&h)
	picked := make([]int, 0, k)
	total := 0
	round := 1
	for len(picked) < k && h.Len() > 0 {
		top := h[0]
		if top.round == round {
			// Fresh for this round: by submodularity every other entry's
			// true gain is at most its (stale) key <= top.gain, so top wins.
			heap.Pop(&h)
			if top.gain == 0 {
				break
			}
			covered.Or(setBits[top.set])
			picked = append(picked, top.set)
			total += top.gain
			round++
			continue
		}
		h[0].gain = covered.AndNotCount(setBits[top.set])
		h[0].round = round
		heap.Fix(&h, 0)
	}
	return picked, total
}

type gainEntry struct {
	set, gain, round int
}

type gainHeap []gainEntry

func (h gainHeap) Len() int { return len(h) }
func (h gainHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].set < h[j].set
}
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainEntry)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
