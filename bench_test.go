package streamcover_test

// Benchmark harness: one benchmark per reproduced table/experiment (see
// DESIGN.md §4 and EXPERIMENTS.md). Each benchmark regenerates its
// experiment's table and surfaces the headline quantities as benchmark
// metrics (approximation ratio, space in words), so
//
//	go test -bench=. -benchmem
//
// reproduces the paper's evaluation end to end. cmd/kcoverbench prints the
// same tables at full scale with human-readable formatting.

import (
	"math/rand"
	"strconv"
	"testing"

	"streamcover"
	"streamcover/internal/core"
	"streamcover/internal/expt"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// benchTable runs a table-producing experiment once per iteration.
func benchTable(b *testing.B, run func(seed int64) (*expt.Table, error)) *expt.Table {
	b.Helper()
	var last *expt.Table
	for i := 0; i < b.N; i++ {
		t, err := run(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	return last
}

// BenchmarkTable1 is experiment E1: the measured rows of the paper's
// Table 1 (baselines vs this paper across α).
func BenchmarkTable1(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.Table1(expt.Table1Config{
			N: 10000, M: 1000, K: 20, Alphas: []float64{2, 4, 8}, Seed: seed,
		})
	})
}

// BenchmarkTradeoffSweep is experiment E2 (Theorem 3.1): space and ratio
// vs α at fixed m.
func BenchmarkTradeoffSweep(b *testing.B) {
	t := benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.TradeoffSweep(expt.TradeoffConfig{
			N: 10000, M: 2000, K: 32, Alphas: []float64{2, 4, 8, 16}, Seed: seed,
		})
	})
	reportColumn(b, t, 3, "words@alpha=16", len(t.Rows)-1)
}

// BenchmarkSpaceVsM is experiment E2b: linear-in-m scaling at fixed α.
func BenchmarkSpaceVsM(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.SpaceVsM(16, 8, []int{500, 1000, 2000}, seed)
	})
}

// BenchmarkReporting is experiment E3 (Theorem 3.2): reported k-cover
// quality and the +k space term.
func BenchmarkReporting(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.Reporting(expt.TradeoffConfig{
			N: 10000, M: 1000, K: 20, Alphas: []float64{4}, Seed: seed,
		})
	})
}

// BenchmarkLowerBound is experiment E4 (Theorem 3.3): DSJ hard instances,
// distinguisher success vs width, and the estimator on the reduction.
func BenchmarkLowerBound(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.LowerBound(expt.LowerBoundConfig{M: 4096, R: 16, Trials: 10, Seed: seed})
	})
}

// BenchmarkUniverseReduction is experiment E5 (Lemma 3.5).
func BenchmarkUniverseReduction(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.UniverseReduction(100, seed), nil
	})
}

// BenchmarkLargeCommon, BenchmarkLargeSet and BenchmarkSmallSet are
// experiments E6–E8: each oracle subroutine standalone on its designed
// instance family, measuring estimate quality and per-edge throughput.
func BenchmarkLargeCommon(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := workload.CommonHeavy(5000, 1000, 10, 200, 0.4, 2, rng)
	d, err := core.Derive(in.System.M(), in.System.N, in.K, 4, core.Practical())
	if err != nil {
		b.Fatal(err)
	}
	edges := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lc := core.NewLargeCommon(d, rng)
		for _, e := range edges {
			lc.Process(e)
		}
		if _, _, ok := lc.Estimate(); !ok {
			b.Fatal("LargeCommon rejected its designed family")
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkLargeSet(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	in := workload.PlantedLargeSets(8000, 1000, 20, 2, 0.8, rng)
	d, err := core.Derive(in.System.M(), in.System.N, in.K, 4, core.Practical())
	if err != nil {
		b.Fatal(err)
	}
	edges := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ls := core.NewLargeSet(d, rng)
		for _, e := range edges {
			ls.Process(e)
		}
		if !ls.Estimate().Feasible {
			b.Fatal("LargeSet rejected its designed family")
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

func BenchmarkSmallSet(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	in := workload.PlantedSmallSets(8000, 2000, 200, 0.8, rng)
	d, err := core.Derive(in.System.M(), in.System.N, in.K, 4, core.Practical())
	if err != nil {
		b.Fatal(err)
	}
	edges := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ss := core.NewSmallSet(d, rng)
		for _, e := range edges {
			ss.Process(e)
		}
		if !ss.Estimate().Feasible {
			b.Fatal("SmallSet rejected its designed family")
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkSetSampling is experiment E9 (Lemma 2.3 / §A.1).
func BenchmarkSetSampling(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.SetSampling(seed)
	})
}

// BenchmarkElementSampling is experiment E10 (Lemma 2.5).
func BenchmarkElementSampling(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.ElementSampling(seed), nil
	})
}

// BenchmarkHeavyHitters is experiment E11 (Theorem 2.10).
func BenchmarkHeavyHitters(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.HeavyHittersAccuracy(seed), nil
	})
}

// BenchmarkContributing is experiment E12 (Theorem 2.11).
func BenchmarkContributing(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.ContributingAccuracy(seed), nil
	})
}

// BenchmarkL0 is experiment E13 (Theorem 2.12).
func BenchmarkL0(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.L0Accuracy(seed), nil
	})
}

// BenchmarkOracleDispatch is experiment E15 (Figure 2): which subroutine
// wins on which planted family.
func BenchmarkOracleDispatch(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.OracleDispatch(seed)
	})
}

// BenchmarkEstimatorThroughput measures the public API's end-to-end
// per-edge cost at a representative configuration.
func BenchmarkEstimatorThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	in := workload.PlantedCover(10000, 1000, 20, 0.8, 5, rng)
	raw := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	edges := make([]streamcover.Edge, len(raw))
	for i, e := range raw {
		edges[i] = streamcover.Edge{Set: e.Set, Elem: e.Elem}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := streamcover.NewEstimator(in.System.M(), in.System.N, in.K, 4, streamcover.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if err := est.ProcessAll(edges); err != nil {
			b.Fatal(err)
		}
		if !est.Result().Feasible {
			b.Fatal("infeasible")
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// reportColumn surfaces one table cell as a benchmark metric.
func reportColumn(b *testing.B, t *expt.Table, col int, name string, row int) {
	b.Helper()
	if row < 0 || row >= len(t.Rows) || col >= len(t.Rows[row]) {
		return
	}
	if v, err := strconv.ParseFloat(t.Rows[row][col], 64); err == nil {
		b.ReportMetric(v, name)
	}
}

// BenchmarkSpaceComposition is experiment E16: per-subroutine space across α.
func BenchmarkSpaceComposition(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.SpaceComposition(seed)
	})
}

// BenchmarkArrivalOrders is experiment E17: order invariance of ours vs
// collapse of the set-arrival baseline.
func BenchmarkArrivalOrders(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.ArrivalOrderInvariance(seed)
	})
}

// BenchmarkHoldoutAblation is experiment E18: SmallSet held-out vs naive.
func BenchmarkHoldoutAblation(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.HoldoutAblation(seed)
	})
}

// BenchmarkNoiseGateAblation is experiment E19: the heavy-hitter noise
// gate on the DSJ hard instances.
func BenchmarkNoiseGateAblation(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.NoiseGateAblation(seed)
	})
}

// BenchmarkDistinctBackend is experiment E20: bottom-k L0 vs HyperLogLog.
func BenchmarkDistinctBackend(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.DistinctBackendAblation(seed)
	})
}

// BenchmarkRepetitionBoosting is experiment E21 (Theorem 3.6's log(1/δ)
// loop).
func BenchmarkRepetitionBoosting(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.RepetitionBoosting(seed)
	})
}

// BenchmarkDistributedMerge is experiment E22: shard-and-merge agreement.
func BenchmarkDistributedMerge(b *testing.B) {
	benchTable(b, func(seed int64) (*expt.Table, error) {
		return expt.DistributedMerge(seed)
	})
}

// BenchmarkEstimatorMerge measures the cost of merging two same-seed
// estimators (the distributed path's reduce step).
func BenchmarkEstimatorMerge(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in := workload.PlantedCover(5000, 500, 10, 0.8, 3, rng)
	edges := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	build := func() *core.Estimator {
		e, err := core.NewEstimator(in.System.M(), in.System.N, in.K, 4, core.Practical(),
			core.NewOracleFactory(), rand.New(rand.NewSource(3)))
		if err != nil {
			b.Fatal(err)
		}
		return e
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		left, right := build(), build()
		for j, e := range edges {
			if j%2 == 0 {
				left.Process(e)
			} else {
				right.Process(e)
			}
		}
		b.StartTimer()
		if err := left.Merge(right); err != nil {
			b.Fatal(err)
		}
	}
}
