package streamcover

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
)

// feedRandomColumns streams edges into est through ProcessColumns in
// randomly sized batches, mirroring feedRandomBatches' split behavior.
func feedRandomColumns(t *testing.T, est *Estimator, sets, elems []uint32, rng *rand.Rand) {
	t.Helper()
	for off := 0; off < len(sets); {
		sz := 1 + rng.Intn(1<<uint(2+rng.Intn(14)))
		if off+sz > len(sets) {
			sz = len(sets) - off
		}
		if err := est.ProcessColumns(sets[off:off+sz], elems[off:off+sz]); err != nil {
			t.Fatal(err)
		}
		off += sz
	}
}

// TestColumnarBatchEquivalence is the columnar ingest equivalence suite:
// ProcessColumns must leave the estimator bit-for-bit identical to
// ProcessBatch over the same logical edges — compared via Encode, which
// captures every sketch bit — at every engine worker count, across random
// batch splits, and when row and columnar batches interleave mid-stream.
// Run under -race in CI this also polices the prepass set-column sharing.
func TestColumnarBatchEquivalence(t *testing.T) {
	edges := plantedEdges(400, 4000, 8, 3200, 9)
	sets := make([]uint32, len(edges))
	elems := make([]uint32, len(edges))
	for i, e := range edges {
		sets[i], elems[i] = e.Set, e.Elem
	}
	build := func(workers int) *Estimator {
		est, err := NewEstimator(400, 4000, 8, 4, WithSeed(21), WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	ref := build(1)
	feedRandomBatches(t, ref, edges, rand.New(rand.NewSource(100)))
	want, err := ref.Encode()
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		est := build(w)
		defer est.Close()
		// A different split proves batch boundaries don't matter either.
		feedRandomColumns(t, est, sets, elems, rand.New(rand.NewSource(int64(500+w))))
		got, err := est.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: columnar ingest diverged from row ingest", w)
		}
		if est.Edges() != ref.Edges() {
			t.Errorf("workers=%d: edge count %d != %d", w, est.Edges(), ref.Edges())
		}
	}

	// Row and columnar batches interleaving on one estimator (the server
	// accepts both encodings on one session) must also converge.
	est := build(2)
	defer est.Close()
	rng := rand.New(rand.NewSource(900))
	for off := 0; off < len(edges); {
		sz := 1 + rng.Intn(1<<uint(2+rng.Intn(14)))
		if off+sz > len(edges) {
			sz = len(edges) - off
		}
		if rng.Intn(2) == 0 {
			err = est.ProcessBatch(edges[off : off+sz])
		} else {
			err = est.ProcessColumns(sets[off:off+sz], elems[off:off+sz])
		}
		if err != nil {
			t.Fatal(err)
		}
		off += sz
	}
	got, err := est.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("interleaved row/columnar ingest diverged from row ingest")
	}
}

// TestProcessColumnsValidation checks the atomic-reject contract: a batch
// with any invalid ID or mismatched column lengths changes nothing.
func TestProcessColumnsValidation(t *testing.T) {
	est, err := NewEstimator(10, 20, 2, 4, WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	before, err := est.Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name        string
		sets, elems []uint32
	}{
		{"length mismatch", []uint32{1, 2}, []uint32{1}},
		{"set oob", []uint32{1, 10}, []uint32{1, 2}},
		{"elem oob", []uint32{1, 2}, []uint32{1, 20}},
	}
	for _, c := range cases {
		if err := est.ProcessColumns(c.sets, c.elems); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	after, err := est.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) || est.Edges() != 0 {
		t.Fatal("rejected batch mutated the estimator")
	}
}
