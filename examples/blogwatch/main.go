// Blog-watch topic coverage — the application that motivated the first
// streaming Max k-Cover algorithm (Saha–Getoor '09, cited as [37] in the
// paper): subscribe to k blogs so that together they cover as many topics
// as possible. Posts arrive over time as (blog, topic) pairs — a blog's
// topics never arrive contiguously, so this is natively an edge-arrival
// stream.
//
// The workload is skewed, as real topic distributions are: a handful of
// broad "aggregator" blogs cover many topics; thousands of niche blogs
// cover few; topic popularity follows a Zipf law.
//
//	go run ./examples/blogwatch
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streamcover"
)

func main() {
	const (
		blogs       = 3000
		topics      = 20000
		aggregators = 6    // broad blogs
		breadth     = 2500 // topics per aggregator
		k           = 6
		alpha       = 4.0
	)
	rng := rand.New(rand.NewSource(11))

	var posts []streamcover.Edge
	// Aggregators: near-disjoint broad topic ranges.
	for b := 0; b < aggregators; b++ {
		for i := 0; i < breadth; i++ {
			posts = append(posts, streamcover.Edge{
				Set:  uint32(b),
				Elem: uint32((b*breadth + i) % topics),
			})
		}
	}
	// Niche blogs: 3 Zipf-popular topics each (heavy topic overlap).
	z := rand.NewZipf(rng, 1.4, 1, topics-1)
	for b := aggregators; b < blogs; b++ {
		for i := 0; i < 3; i++ {
			posts = append(posts, streamcover.Edge{Set: uint32(b), Elem: uint32(z.Uint64())})
		}
	}
	// Posts arrive in time order = random interleaving.
	rng.Shuffle(len(posts), func(i, j int) { posts[i], posts[j] = posts[j], posts[i] })

	est, err := streamcover.NewEstimator(blogs, topics, k, alpha, streamcover.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	if err := est.ProcessAll(posts); err != nil {
		log.Fatal(err)
	}
	res := est.Result()

	fmt.Printf("stream: %d posts from %d blogs over %d topics\n",
		len(posts), blogs, topics)
	fmt.Printf("estimated best %d-blog topic coverage: %.0f\n", k, res.Coverage)
	fmt.Printf("subscribe to blogs %v\n", res.SetIDs)
	trueCover, err := streamcover.Coverage(posts, blogs, topics, res.SetIDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("they truly cover %d topics (planted aggregators cover %d)\n",
		trueCover, aggregators*breadth)
	fmt.Printf("space: %d words, single pass\n", res.SpaceWords)
}
