// Parallel processing demo: the estimator's coverage-guess ladder is
// embarrassingly parallel, and ProcessAllParallel exploits it with
// bit-for-bit identical results. This example times the same stream
// sequentially and with workers, verifies the outputs match, and prints
// the per-component space breakdown.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"streamcover"
)

func main() {
	const (
		m, n, k = 2000, 20000, 40
		opt     = 16000
		alpha   = 4.0
	)
	rng := rand.New(rand.NewSource(13))
	var edges []streamcover.Edge
	for i := 0; i < k; i++ {
		for e := i * opt / k; e < (i+1)*opt/k; e++ {
			edges = append(edges, streamcover.Edge{Set: uint32(i), Elem: uint32(e)})
		}
	}
	for s := k; s < m; s++ {
		for d := 0; d < 4; d++ {
			edges = append(edges, streamcover.Edge{Set: uint32(s), Elem: uint32(rng.Intn(opt))})
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	run := func(workers int) (streamcover.Result, time.Duration, map[string]int) {
		est, err := streamcover.NewEstimator(m, n, k, alpha, streamcover.WithSeed(21))
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		if workers <= 1 {
			err = est.ProcessAll(edges)
		} else {
			err = est.ProcessAllParallel(edges, workers)
		}
		if err != nil {
			log.Fatal(err)
		}
		return est.Result(), time.Since(start), est.SpaceBreakdown()
	}

	seqRes, seqTime, breakdown := run(1)
	workers := runtime.NumCPU()
	parRes, parTime, _ := run(workers)

	fmt.Printf("stream: %d edges, m=%d, k=%d, alpha=%.0f\n", len(edges), m, k, alpha)
	fmt.Printf("sequential: estimate %.0f in %v\n", seqRes.Coverage, seqTime.Round(time.Millisecond))
	fmt.Printf("%d workers: estimate %.0f in %v (identical: %v)\n",
		workers, parRes.Coverage, parTime.Round(time.Millisecond),
		seqRes.Coverage == parRes.Coverage)
	fmt.Println("space breakdown (words):")
	keys := make([]string, 0, len(breakdown))
	for part := range breakdown {
		keys = append(keys, part)
	}
	sort.Strings(keys)
	for _, part := range keys {
		fmt.Printf("  %-12s %d\n", part, breakdown[part])
	}
}
