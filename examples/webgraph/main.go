// Webgraph influencer selection — the paper's footnote-2 motivation made
// concrete. Sets are the out-neighborhoods N⁺(u) of a directed graph
// ("who does u reach?"); Max k-Cover picks the k accounts that jointly
// reach the most users. The catch: the crawl delivers edges keyed by the
// DESTINATION (each page lists its in-links), so each account's
// neighborhood arrives scattered across the whole stream — exactly the
// general edge-arrival model where set-arrival streaming algorithms break.
//
// The graph is a planted-hub digraph: a few hub accounts reach large,
// mostly disjoint audiences; everyone else reaches a handful of users.
//
//	go run ./examples/webgraph
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"

	"streamcover"
)

func main() {
	const (
		users = 6000 // vertices (and thus max sets)
		hubs  = 8    // planted influencers
		reach = 600  // audience per hub
		k     = 8
		alpha = 4.0
	)
	rng := rand.New(rand.NewSource(2026))

	// Build the edge list destination-major, as an in-link crawl would
	// deliver it: for each user, who links to them.
	inlinks := make([][]uint32, users) // inlinks[v] = sources u with u->v
	for h := 0; h < hubs; h++ {
		for i := 0; i < reach; i++ {
			v := uint32(hubs + h*reach + i) // disjoint audiences
			inlinks[v] = append(inlinks[v], uint32(h))
		}
	}
	for u := hubs; u < users; u++ { // long tail: 2 random followees each
		for d := 0; d < 2; d++ {
			v := uint32(rng.Intn(users))
			if int(v) != u {
				inlinks[v] = append(inlinks[v], uint32(u))
			}
		}
	}
	var edges []streamcover.Edge // Set = source account, Elem = reached user
	for v, srcs := range inlinks {
		for _, u := range srcs {
			edges = append(edges, streamcover.Edge{Set: u, Elem: uint32(v)})
		}
	}

	est, err := streamcover.NewEstimator(users, users, k, alpha,
		streamcover.WithSeed(3))
	if err != nil {
		log.Fatal(err)
	}
	if err := est.ProcessAll(edges); err != nil {
		log.Fatal(err)
	}
	res := est.Result()

	reported := append([]uint32(nil), res.SetIDs...)
	sort.Slice(reported, func(i, j int) bool { return reported[i] < reported[j] })
	hubsFound := 0
	for _, id := range reported {
		if id < hubs {
			hubsFound++
		}
	}

	fmt.Printf("graph: %d users, %d edges, %d planted hubs reaching %d each\n",
		users, len(edges), hubs, reach)
	fmt.Printf("estimated max %d-account reach: %.0f (true planted reach %d)\n",
		k, res.Coverage, hubs*reach)
	fmt.Printf("selected accounts: %v (%d/%d planted hubs found)\n",
		reported, hubsFound, hubs)
	trueReach, err := streamcover.Coverage(edges, users, users, res.SetIDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("their true reach: %d users\n", trueReach)
	fmt.Printf("space: %d words vs %d stored edges for the offline baseline\n",
		res.SpaceWords, len(edges))

	gIDs, gCov, err := streamcover.GreedyCover(edges, users, users, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline greedy (stores everything): %d users via %d accounts\n",
		gCov, len(gIDs))
}
