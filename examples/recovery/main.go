// Crash recovery, end to end: this example builds the kcoverd binary,
// runs a durable daemon, streams a planted instance into it, SIGKILLs the
// daemon mid-stream (after a checkpoint plus a WAL tail of acknowledged
// batches), restarts it on the same address, and lets the reconnecting
// client finish the stream. The recovered daemon's final estimate must be
// bit-identical to an uninterrupted daemon fed the same stream with the
// same worker count. Replay throughput is written to BENCH_recovery.json.
//
//	go run ./examples/recovery        # from the repository root
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"time"

	"streamcover"
	"streamcover/internal/client"
)

const (
	ingestAddr = "127.0.0.1:17641"
	httpAddr   = "127.0.0.1:17642"
	refIngest  = "127.0.0.1:17643"
	refHTTP    = "127.0.0.1:17644"

	m, n, k = 2000, 20000, 20
	opt     = 16000
	alpha   = 4.0
	seed    = 42
	workers = "4" // fixed: bit-identical recovery requires a stable shard count
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recovery: ")

	tmp, err := os.MkdirTemp("", "kcoverd-recovery-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	bin := filepath.Join(tmp, "kcoverd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/kcoverd")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		log.Fatal("building kcoverd (run from the repository root): ", err)
	}

	edges := plantedStream()
	q1, q2, q3 := len(edges)/4, len(edges)/2, 3*len(edges)/4
	dataDir := filepath.Join(tmp, "data")

	daemon := startDaemon(bin, ingestAddr, httpAddr, "-data", dataDir, "-wal-nosync")
	log.Printf("daemon up on %s (pid %d), streaming %d edges", ingestAddr, daemon.Process.Pid, len(edges))

	c, err := client.Dial(ingestAddr,
		client.WithBatchSize(512),
		client.WithReconnect(60),
		client.WithBackoff(20*time.Millisecond, 200*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	sess, err := c.Create("recovery", m, n, k, alpha, seed)
	if err != nil {
		log.Fatal(err)
	}

	// First half, then force a checkpoint so recovery exercises both the
	// snapshot restore and the WAL tail that accumulates after it.
	sendAll(sess, edges[:q2])
	if _, err := http.Get("http://" + httpAddr + "/checkpoint"); err != nil {
		log.Fatal("checkpoint request: ", err)
	}
	sendAll(sess, edges[q2:q3]) // acknowledged, but only in the WAL
	log.Printf("checkpoint at edge %d, WAL tail to edge %d — SIGKILL", q2, q3)

	if err := daemon.Process.Kill(); err != nil {
		log.Fatal(err)
	}
	daemon.Wait()

	daemon = startDaemon(bin, ingestAddr, httpAddr, "-data", dataDir, "-wal-nosync")
	defer func() { daemon.Process.Kill(); daemon.Wait() }()
	log.Printf("daemon restarted (pid %d), client resumes the stream", daemon.Process.Pid)

	// The reconnecting client redials, re-creates the session (idempotent
	// against the recovered one), resends anything unacknowledged, and
	// carries on with the final quarter.
	sendAll(sess, edges[q3:])
	got, err := sess.Query()
	if err != nil {
		log.Fatal(err)
	}
	c.Close()

	replay := fetchReplayCounters()
	log.Printf("recovery replayed %d batches / %d edges in %.1fms (%.2fM edges/s)",
		replay["replay_batches"], replay["replay_edges"],
		float64(replay["replay_nanos"])/1e6, float64(replay["replay_edges_per_sec"])/1e6)

	// Reference: an uninterrupted in-memory daemon, same stream, same
	// worker count.
	ref := startDaemon(bin, refIngest, refHTTP)
	defer func() { ref.Process.Kill(); ref.Wait() }()
	rc, err := client.Dial(refIngest, client.WithBatchSize(512))
	if err != nil {
		log.Fatal(err)
	}
	rsess, err := rc.Create("recovery", m, n, k, alpha, seed)
	if err != nil {
		log.Fatal(err)
	}
	sendAll(rsess, edges)
	want, err := rsess.Query()
	if err != nil {
		log.Fatal(err)
	}
	rc.Close()

	match := got.Coverage == want.Coverage && got.Edges == want.Edges &&
		got.Feasible == want.Feasible && reflect.DeepEqual(got.SetIDs, want.SetIDs)
	log.Printf("recovered:      coverage %.6f over %d edges", got.Coverage, got.Edges)
	log.Printf("uninterrupted:  coverage %.6f over %d edges", want.Coverage, want.Edges)
	if !match {
		log.Fatal("FAIL: recovered daemon diverged from the uninterrupted run")
	}
	log.Printf("bit-identical after SIGKILL + restart (quarter boundaries %d/%d/%d)", q1, q2, q3)

	writeBench(replay, got.Coverage, got.Edges)
}

// plantedStream builds the usual planted instance: k sets tile the
// optimum, the rest is background noise, order shuffled.
func plantedStream() []streamcover.Edge {
	rng := rand.New(rand.NewSource(7))
	var edges []streamcover.Edge
	for i := 0; i < k; i++ {
		for e := i * opt / k; e < (i+1)*opt/k; e++ {
			edges = append(edges, streamcover.Edge{Set: uint32(i), Elem: uint32(e)})
		}
	}
	for s := k; s < m; s++ {
		for d := 0; d < 4; d++ {
			edges = append(edges, streamcover.Edge{Set: uint32(s), Elem: uint32(rng.Intn(n))})
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

func startDaemon(bin, listen, httpA string, extra ...string) *exec.Cmd {
	args := append([]string{
		"-listen", listen, "-http", httpA,
		"-workers", workers, "-checkpoint", "0",
	}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		log.Fatal(err)
	}
	waitForPort(listen)
	return cmd
}

func waitForPort(addr string) {
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	log.Fatalf("daemon did not come up on %s", addr)
}

func sendAll(sess *client.Session, edges []streamcover.Edge) {
	if err := sess.Send(edges); err != nil {
		log.Fatal(err)
	}
	if err := sess.Flush(); err != nil {
		log.Fatal(err)
	}
}

func fetchReplayCounters() map[string]int64 {
	resp, err := http.Get("http://" + httpAddr + "/metrics")
	if err != nil {
		log.Fatal("metrics request: ", err)
	}
	defer resp.Body.Close()
	var out struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal("metrics decode: ", err)
	}
	return out.Counters
}

func writeBench(replay map[string]int64, coverage float64, edges int) {
	bench := map[string]any{
		"benchmark":            "kcoverd crash recovery (examples/recovery)",
		"instance":             fmt.Sprintf("planted m=%d n=%d k=%d alpha=%g seed=%d", m, n, k, alpha, seed),
		"workers":              4,
		"replay_batches":       replay["replay_batches"],
		"replay_edges":         replay["replay_edges"],
		"replay_nanos":         replay["replay_nanos"],
		"replay_edges_per_sec": replay["replay_edges_per_sec"],
		"recovered_coverage":   coverage,
		"recovered_edges":      edges,
		"bit_identical":        true,
	}
	data, _ := json.MarshalIndent(bench, "", "  ")
	data = append(data, '\n')
	if err := os.WriteFile("BENCH_recovery.json", data, 0o644); err != nil {
		log.Fatal(err)
	}
	log.Print("wrote BENCH_recovery.json")
}
