// Quickstart: estimate and report a maximum k-coverage over an
// edge-arrival stream using the streamcover public API.
//
// We build a tiny planted instance — k disjoint "good" sets covering most
// of the universe plus many small decoys — shuffle all (set, element)
// pairs into a single arbitrary-order stream (the general edge-arrival
// model), and run the single-pass estimator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streamcover"
)

func main() {
	const (
		m     = 500  // sets
		n     = 5000 // elements
		k     = 10   // cover budget
		opt   = 4000 // planted optimal coverage
		alpha = 4.0  // approximation target: estimate within [OPT/Õ(α), OPT]
	)

	// Planted instance: sets 0..k-1 partition elements 0..opt-1;
	// sets k..m-1 are singleton decoys inside the same footprint.
	rng := rand.New(rand.NewSource(42))
	var edges []streamcover.Edge
	for i := 0; i < k; i++ {
		for e := i * opt / k; e < (i+1)*opt/k; e++ {
			edges = append(edges, streamcover.Edge{Set: uint32(i), Elem: uint32(e)})
		}
	}
	for s := k; s < m; s++ {
		edges = append(edges, streamcover.Edge{Set: uint32(s), Elem: uint32(rng.Intn(opt))})
	}
	// Arbitrary arrival order: elements of different sets fully interleaved.
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	est, err := streamcover.NewEstimator(m, n, k, alpha, streamcover.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range edges { // THE single pass
		if err := est.Process(e); err != nil {
			log.Fatal(err)
		}
	}
	res := est.Result()

	fmt.Printf("planted optimum:    %d elements\n", opt)
	fmt.Printf("coverage estimate:  %.0f (feasible=%v)\n", res.Coverage, res.Feasible)
	fmt.Printf("reported sets:      %v\n", res.SetIDs)
	trueCover, err := streamcover.Coverage(edges, m, n, res.SetIDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("their true cover:   %d elements\n", trueCover)
	fmt.Printf("space used:         %d words (stream had %d edges)\n",
		res.SpaceWords, len(edges))
}
