// Trade-off demo: the paper's headline result is that approximation α and
// space trade off as Θ̃(m/α²) — pay a coarser answer, get a quadratically
// smaller footprint. This example runs the same planted stream through
// estimators at α = 2, 4, 8, 16 and prints the measured frontier.
//
//	go run ./examples/tradeoff
package main

import (
	"fmt"
	"log"
	"math/rand"

	"streamcover"
)

func main() {
	const (
		m, n, k = 2000, 20000, 40
		opt     = 16000
	)
	rng := rand.New(rand.NewSource(9))
	var edges []streamcover.Edge
	for i := 0; i < k; i++ {
		for e := i * opt / k; e < (i+1)*opt/k; e++ {
			edges = append(edges, streamcover.Edge{Set: uint32(i), Elem: uint32(e)})
		}
	}
	for s := k; s < m; s++ {
		for d := 0; d < 5; d++ {
			edges = append(edges, streamcover.Edge{Set: uint32(s), Elem: uint32(rng.Intn(opt))})
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	fmt.Printf("planted OPT = %d, m = %d sets, %d edges\n\n", opt, m, len(edges))
	fmt.Printf("%-6s  %-10s  %-12s  %-14s  %s\n",
		"alpha", "estimate", "OPT/estimate", "space (words)", "space*alpha^2/m")
	for _, alpha := range []float64{2, 4, 8, 16} {
		est, err := streamcover.NewEstimator(m, n, k, alpha, streamcover.WithSeed(int64(alpha)))
		if err != nil {
			log.Fatal(err)
		}
		if err := est.ProcessAll(edges); err != nil {
			log.Fatal(err)
		}
		res := est.Result()
		fmt.Printf("%-6.0f  %-10.0f  %-12.2f  %-14d  %.0f\n",
			alpha, res.Coverage, float64(opt)/res.Coverage, res.SpaceWords,
			float64(res.SpaceWords)*alpha*alpha/float64(m))
	}
	fmt.Println("\nDoubling alpha roughly quarters the sketching state (the")
	fmt.Println("residual growth in the last column is the +k term and the")
	fmt.Println("alpha-independent parts of the Õ).")
}
