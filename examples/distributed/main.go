// Distributed estimation: the estimator is mergeable, so a partitioned
// edge stream can be summarized by independent workers and combined. This
// example splits one stream across four workers (by edge hash — sets end
// up scattered across ALL workers, the hardest partition), runs four
// same-seed estimators concurrently, merges them, and compares against a
// single estimator that saw everything.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"streamcover"
)

func main() {
	const (
		m, n, k = 1000, 10000, 20
		opt     = 8000
		alpha   = 4.0
		workers = 4
	)
	rng := rand.New(rand.NewSource(3))
	var edges []streamcover.Edge
	for i := 0; i < k; i++ {
		for e := i * opt / k; e < (i+1)*opt/k; e++ {
			edges = append(edges, streamcover.Edge{Set: uint32(i), Elem: uint32(e)})
		}
	}
	for s := k; s < m; s++ {
		for d := 0; d < 3; d++ {
			edges = append(edges, streamcover.Edge{Set: uint32(s), Elem: uint32(rng.Intn(opt))})
		}
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })

	build := func() *streamcover.Estimator {
		est, err := streamcover.NewEstimator(m, n, k, alpha, streamcover.WithSeed(17))
		if err != nil {
			log.Fatal(err)
		}
		return est
	}

	// The reference: one estimator over the whole stream.
	whole := build()
	if err := whole.ProcessAll(edges); err != nil {
		log.Fatal(err)
	}

	// Four workers over four shards, concurrently.
	shards := make([]*streamcover.Estimator, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		shards[w] = build()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(edges); i += workers {
				if err := shards[w].Process(edges[i]); err != nil {
					log.Fatal(err)
				}
			}
		}(w)
	}
	wg.Wait()
	merged := shards[0]
	for w := 1; w < workers; w++ {
		if err := merged.Merge(shards[w]); err != nil {
			log.Fatal(err)
		}
	}

	wr, mr := whole.Result(), merged.Result()
	fmt.Printf("planted optimum:   %d\n", opt)
	fmt.Printf("whole stream:      %.0f (1 worker, %d edges)\n", wr.Coverage, whole.Edges())
	fmt.Printf("merged %d shards:   %.0f (%d edges total)\n", workers, mr.Coverage, merged.Edges())
	fmt.Printf("agreement:         %.1f%%\n", 100*min64(wr.Coverage, mr.Coverage)/max64(wr.Coverage, mr.Coverage))
	trueCover, err := streamcover.Coverage(edges, m, n, mr.SetIDs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("merged report covers %d elements with %d sets\n",
		trueCover, len(mr.SetIDs))
}

func min64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
