package streamcover_test

import (
	"fmt"

	"streamcover"
)

// ExampleNewEstimator demonstrates the core single-pass workflow: build,
// stream edges in arbitrary order, read the estimate and the witnessing
// sets.
func ExampleNewEstimator() {
	const (
		m, n, k = 100, 1000, 4
		alpha   = 2.0
	)
	// Four disjoint planted sets of 200 elements each; everything else is
	// a singleton decoy.
	var edges []streamcover.Edge
	for i := 0; i < k; i++ {
		for e := 0; e < 200; e++ {
			edges = append(edges, streamcover.Edge{Set: uint32(i), Elem: uint32(i*200 + e)})
		}
	}
	for s := k; s < m; s++ {
		edges = append(edges, streamcover.Edge{Set: uint32(s), Elem: uint32(s)})
	}

	est, err := streamcover.NewEstimator(m, n, k, alpha, streamcover.WithSeed(1))
	if err != nil {
		panic(err)
	}
	if err := est.ProcessAll(edges); err != nil {
		panic(err)
	}
	res := est.Result()
	fmt.Println("feasible:", res.Feasible)
	fmt.Println("within guarantee:", res.Coverage >= 800/(4*alpha) && res.Coverage <= 800*1.5)
	fmt.Println("reported sets ≤ k:", len(res.SetIDs) <= k)
	// Output:
	// feasible: true
	// within guarantee: true
	// reported sets ≤ k: true
}

// ExampleGreedyCover demonstrates the offline baseline helper used to
// validate streaming answers on small inputs.
func ExampleGreedyCover() {
	edges := []streamcover.Edge{
		{Set: 0, Elem: 0}, {Set: 0, Elem: 1}, {Set: 0, Elem: 2},
		{Set: 1, Elem: 2}, {Set: 1, Elem: 3},
		{Set: 2, Elem: 4},
	}
	ids, cov, err := streamcover.GreedyCover(edges, 3, 5, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("sets:", len(ids), "coverage:", cov)
	// Output:
	// sets: 2 coverage: 4
}

// ExampleCoverage demonstrates exact validation of a reported solution.
func ExampleCoverage() {
	edges := []streamcover.Edge{
		{Set: 0, Elem: 0}, {Set: 0, Elem: 1},
		{Set: 1, Elem: 1}, {Set: 1, Elem: 2},
	}
	cov, err := streamcover.Coverage(edges, 2, 3, []uint32{0, 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(cov)
	// Output:
	// 3
}
