package streamcover

import (
	"math/rand"
	"testing"
)

// plantedEdges builds a shuffled edge stream with a known optimal k-cover:
// k disjoint sets covering `covered` elements plus singleton decoys.
func plantedEdges(m, n, k, covered int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	var edges []Edge
	for i := 0; i < k; i++ {
		lo, hi := i*covered/k, (i+1)*covered/k
		for e := lo; e < hi; e++ {
			edges = append(edges, Edge{Set: uint32(i), Elem: uint32(e)})
		}
	}
	for s := k; s < m; s++ {
		edges = append(edges, Edge{Set: uint32(s), Elem: uint32(rng.Intn(covered))})
	}
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	return edges
}

func TestEstimatorEndToEnd(t *testing.T) {
	const (
		m, n, k = 1000, 10000, 20
		covered = 8000
		alpha   = 4.0
	)
	edges := plantedEdges(m, n, k, covered, 1)
	est, err := NewEstimator(m, n, k, alpha, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := est.ProcessAll(edges); err != nil {
		t.Fatal(err)
	}
	if est.Edges() != len(edges) {
		t.Errorf("Edges() = %d, want %d", est.Edges(), len(edges))
	}
	res := est.Result()
	if !res.Feasible {
		t.Fatal("infeasible on a dense planted instance")
	}
	if res.Coverage > 1.4*covered {
		t.Errorf("Coverage %v exceeds 1.4·OPT = %v", res.Coverage, 1.4*covered)
	}
	if res.Coverage < covered/(1.5*alpha) {
		t.Errorf("Coverage %v below OPT/(1.5α) = %v", res.Coverage, covered/(1.5*alpha))
	}
	if len(res.SetIDs) == 0 || len(res.SetIDs) > k {
		t.Fatalf("reported %d sets, want 1..%d", len(res.SetIDs), k)
	}
	cov, err := Coverage(edges, m, n, res.SetIDs)
	if err != nil {
		t.Fatal(err)
	}
	if float64(cov) < float64(covered)/(3*alpha) {
		t.Errorf("reported sets truly cover %d, below OPT/(3α)", cov)
	}
	if res.SpaceWords <= 0 {
		t.Error("SpaceWords not positive")
	}
}

func TestEstimatorDeterministicAcrossRuns(t *testing.T) {
	edges := plantedEdges(300, 3000, 10, 2000, 2)
	run := func() Result {
		est, err := NewEstimator(300, 3000, 10, 4, WithSeed(99))
		if err != nil {
			t.Fatal(err)
		}
		if err := est.ProcessAll(edges); err != nil {
			t.Fatal(err)
		}
		return est.Result()
	}
	a, b := run(), run()
	if a.Coverage != b.Coverage || a.Feasible != b.Feasible {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestEstimatorRejectsBadInput(t *testing.T) {
	if _, err := NewEstimator(0, 10, 1, 2); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewEstimator(10, 10, 1, 0.2); err == nil {
		t.Error("alpha<1 accepted")
	}
	est, err := NewEstimator(10, 10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Process(Edge{Set: 10, Elem: 0}); err == nil {
		t.Error("out-of-range set accepted")
	}
	if err := est.Process(Edge{Set: 0, Elem: 10}); err == nil {
		t.Error("out-of-range element accepted")
	}
	if err := est.ProcessAll([]Edge{{0, 0}, {0, 99}}); err == nil {
		t.Error("ProcessAll swallowed an invalid edge")
	}
}

func TestEstimatorOptions(t *testing.T) {
	edges := plantedEdges(300, 3000, 10, 2000, 3)
	est, err := NewEstimator(300, 3000, 10, 4,
		WithSeed(5), WithRepetitions(2), WithGuessBase(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := est.ProcessAll(edges); err != nil {
		t.Fatal(err)
	}
	res := est.Result()
	if !res.Feasible {
		t.Fatal("infeasible with boosted options")
	}
	// Bad option values fall back to defaults rather than breaking.
	if _, err := NewEstimator(300, 3000, 10, 4, WithRepetitions(-1), WithGuessBase(0.5)); err != nil {
		t.Fatal(err)
	}
}

func TestCoverageHelper(t *testing.T) {
	edges := []Edge{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 4}}
	if got, err := Coverage(edges, 3, 5, []uint32{0, 1}); err != nil || got != 3 {
		t.Errorf("Coverage = %d, %v, want 3", got, err)
	}
	if got, err := Coverage(edges, 3, 5, nil); err != nil || got != 0 {
		t.Errorf("Coverage(nil) = %d, %v, want 0", got, err)
	}
	// Out-of-range IDs are errors, matching GreedyCover's validation.
	if _, err := Coverage([]Edge{{0, 99}}, 5, 5, []uint32{0}); err == nil {
		t.Error("out-of-range element accepted")
	}
	if _, err := Coverage(edges, 3, 5, []uint32{7}); err == nil {
		t.Error("set id >= m accepted")
	}
	if _, err := Coverage([]Edge{{9, 0}}, 3, 5, nil); err == nil {
		t.Error("edge set id >= m accepted")
	}
}

func TestGreedyCoverHelper(t *testing.T) {
	edges := []Edge{
		{0, 0}, {0, 1}, {0, 2},
		{1, 2}, {1, 3},
		{2, 4},
	}
	ids, cov, err := GreedyCover(edges, 3, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 4 { // optimal for k=2: {0,1,2} plus either other set
		t.Errorf("greedy coverage %d, want 4", cov)
	}
	if len(ids) != 2 {
		t.Errorf("greedy picked %v", ids)
	}
	if _, _, err := GreedyCover([]Edge{{9, 0}}, 3, 5, 1); err == nil {
		t.Error("out-of-range set accepted")
	}
	if _, _, err := GreedyCover([]Edge{{0, 9}}, 3, 5, 1); err == nil {
		t.Error("out-of-range element accepted")
	}
}

func TestEstimatorTrivialRegime(t *testing.T) {
	// kα ≥ m: the answer is n/α immediately.
	est, err := NewEstimator(10, 1000, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := est.Result()
	if !res.Feasible || res.Coverage != 250 {
		t.Errorf("trivial regime result %+v, want coverage 250", res)
	}
}

func TestSpaceBreakdownSumsToTotal(t *testing.T) {
	edges := plantedEdges(300, 3000, 10, 2000, 4)
	est, err := NewEstimator(300, 3000, 10, 4, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := est.ProcessAll(edges); err != nil {
		t.Fatal(err)
	}
	br := est.SpaceBreakdown()
	for _, part := range []string{"largecommon", "largeset", "smallset", "reduction"} {
		if br[part] <= 0 {
			t.Errorf("component %q has %d words", part, br[part])
		}
	}
	sum := 0
	for _, w := range br {
		sum += w
	}
	total := est.Result().SpaceWords
	// The breakdown covers all but the top-level bookkeeping constants.
	if sum > total || total-sum > 100 {
		t.Errorf("breakdown sums to %d, total %d", sum, total)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	edges := plantedEdges(500, 5000, 10, 4000, 8)
	seq, err := NewEstimator(500, 5000, 10, 4, WithSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	if err := seq.ProcessAll(edges); err != nil {
		t.Fatal(err)
	}
	par, err := NewEstimator(500, 5000, 10, 4, WithSeed(77))
	if err != nil {
		t.Fatal(err)
	}
	if err := par.ProcessAllParallel(edges, 4); err != nil {
		t.Fatal(err)
	}
	sr, pr := seq.Result(), par.Result()
	if sr.Coverage != pr.Coverage || sr.Feasible != pr.Feasible {
		t.Errorf("parallel diverged: seq %+v vs par %+v", sr, pr)
	}
	if seq.Edges() != par.Edges() {
		t.Errorf("edge counts diverged: %d vs %d", seq.Edges(), par.Edges())
	}
}

func TestParallelValidatesInput(t *testing.T) {
	est, err := NewEstimator(10, 10, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.ProcessAllParallel([]Edge{{Set: 99, Elem: 0}}, 2); err == nil {
		t.Error("out-of-range set accepted by parallel path")
	}
	if err := est.ProcessAllParallel([]Edge{{Set: 0, Elem: 99}}, 2); err == nil {
		t.Error("out-of-range element accepted by parallel path")
	}
	if err := est.ProcessAllParallel(nil, 0); err != nil {
		t.Errorf("empty parallel feed errored: %v", err)
	}
}

func TestFacadeMergeShards(t *testing.T) {
	edges := plantedEdges(600, 6000, 12, 4800, 10)
	build := func() *Estimator {
		est, err := NewEstimator(600, 6000, 12, 4, WithSeed(31))
		if err != nil {
			t.Fatal(err)
		}
		return est
	}
	whole := build()
	if err := whole.ProcessAll(edges); err != nil {
		t.Fatal(err)
	}
	a, b := build(), build()
	for i, e := range edges {
		var err error
		if i%2 == 0 {
			err = a.Process(e)
		} else {
			err = b.Process(e)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	wr, mr := whole.Result(), a.Result()
	if !mr.Feasible {
		t.Fatal("merged infeasible")
	}
	if mr.Coverage < 0.85*wr.Coverage || mr.Coverage > 1.15*wr.Coverage {
		t.Errorf("merged %v vs whole %v beyond 15%%", mr.Coverage, wr.Coverage)
	}
	if a.Edges() != whole.Edges() {
		t.Errorf("merged edge count %d != %d", a.Edges(), whole.Edges())
	}
	if err := a.Merge(nil); err == nil {
		t.Error("nil merge accepted")
	}
	diff, err := NewEstimator(600, 6000, 12, 4, WithSeed(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(diff); err == nil {
		t.Error("different-seed merge accepted")
	}
}

func TestCloneSnapshotsState(t *testing.T) {
	const (
		m, n, k = 600, 6000, 12
		alpha   = 4.0
	)
	edges := plantedEdges(m, n, k, 4800, 11)
	est, err := NewEstimator(m, n, k, alpha, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	half := len(edges) / 2
	if err := est.ProcessAll(edges[:half]); err != nil {
		t.Fatal(err)
	}
	snap := est.Result()
	clone, err := est.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if clone.Edges() != est.Edges() {
		t.Errorf("clone edge count %d != %d", clone.Edges(), est.Edges())
	}
	// The original keeps ingesting; the clone must be unaffected (this is
	// kcoverd's query path: snapshot, then finalize off the ingest path).
	if err := est.ProcessAll(edges[half:]); err != nil {
		t.Fatal(err)
	}
	// SpaceWords may differ slightly (the clone's candidate dictionaries
	// are re-trimmed on merge); the estimate itself must not.
	cr := clone.Result()
	if cr.Coverage != snap.Coverage || cr.Feasible != snap.Feasible ||
		!equalIDs(cr.SetIDs, snap.SetIDs) {
		t.Errorf("clone drifted after original kept processing: %+v vs snapshot %+v", cr, snap)
	}
	// And the clone still works as a live estimator: feeding it the rest
	// reconverges with the original.
	if err := clone.ProcessAll(edges[half:]); err != nil {
		t.Fatal(err)
	}
	fr, or := clone.Result(), est.Result()
	if fr.Coverage != or.Coverage || !equalIDs(fr.SetIDs, or.SetIDs) {
		t.Errorf("clone+rest %+v != original %+v", fr, or)
	}
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
