// Command kcoverload runs declarative load/chaos scenarios against a
// managed in-process kcoverd: each JSON spec describes a seeded workload,
// a client fleet, timed phases with arrival-rate pacing, a daemon
// lifecycle schedule (kill/restart/checkpoint, plus failover in cluster
// mode) and a fault schedule (disk-full budgets, fsync failures, I/O
// latency, partitions, delays, replication-plane partitions), plus
// pass/fail gates over the measurements. The report carries per-phase
// throughput, client-observed and server-side p50/p95/p99 latency, and
// recovery-time-to-healthy for every fault window and restart.
//
// A spec with a "cluster" block runs an N-node replication fleet instead
// of one daemon: sessions place onto replicas by consistent hash, ingest
// goes through the cluster-aware client (which rides leader failovers),
// and the report adds per-replica convergence rows — role, applied
// watermark, and estimator digest, which must be byte-equal across the
// fleet (see scenarios/cluster-failover.json).
//
// Usage:
//
//	kcoverload -spec scenarios/steady.json -out BENCH_scenarios.json
//	kcoverload -spec scenarios/steady.json,scenarios/disk-full.json
//	kcoverload -spec scenarios/steady.json -baseline BENCH_prev.json
//	kcoverload -spec scenarios/cluster-failover.json
//
// Exit status is nonzero when any scenario fails a gate, so a CI job can
// gate merges on it directly. kcoverload complements cmd/kcoverbench:
// kcoverbench measures the estimator's accuracy/space trade-offs
// in-process (the paper's tables); kcoverload measures the daemon's
// behavior under load and faults end to end.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streamcover/internal/scenario"
)

func main() {
	specs := flag.String("spec", "", "comma-separated scenario spec files (required)")
	out := flag.String("out", "BENCH_scenarios.json", "report output path")
	baseline := flag.String("baseline", "", "previous report to compare throughput against")
	poll := flag.Duration("poll", 100*time.Millisecond, "healthz scrape cadence (recovery-time resolution)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if *specs == "" {
		fmt.Fprintln(os.Stderr, "kcoverload: -spec is required")
		flag.Usage()
		os.Exit(2)
	}

	var base *scenario.Report
	if *baseline != "" {
		b, err := scenario.LoadReport(*baseline)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kcoverload: %v\n", err)
			os.Exit(2)
		}
		base = b
	}

	rep := &scenario.Report{GeneratedAt: time.Now().UTC().Format(time.RFC3339)}
	failed := 0
	for _, path := range strings.Split(*specs, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		spec, err := scenario.ParseSpecFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kcoverload: %v\n", err)
			os.Exit(2)
		}
		opts := scenario.Options{PollInterval: *poll, Baseline: base.Scenario(spec.Name)}
		if !*quiet {
			opts.Log = os.Stderr
		}
		sr, err := scenario.Run(spec, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kcoverload: %s: %v\n", spec.Name, err)
			os.Exit(1)
		}
		rep.Scenarios = append(rep.Scenarios, sr)
		printSummary(sr)
		if !sr.Pass {
			failed++
		}
	}

	if err := scenario.WriteReport(*out, rep); err != nil {
		fmt.Fprintf(os.Stderr, "kcoverload: write report: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("report: %s (%d scenarios, %d failed)\n", *out, len(rep.Scenarios), failed)
	if failed > 0 {
		os.Exit(1)
	}
}

func printSummary(sr *scenario.ScenarioReport) {
	status := "PASS"
	if !sr.Pass {
		status = "FAIL"
	}
	fmt.Printf("%-24s %s  seed=%d digest=%s  %.0f edges/s  applied %d/%d\n",
		sr.Name, status, sr.Seed, sr.StreamDigest, sr.Throughput(), sr.EdgesApplied, sr.EdgesSent)
	for _, p := range sr.Phases {
		fmt.Printf("  phase %-14s %6.2fs  %9.0f edges/s  p50=%.1fms p95=%.1fms p99=%.1fms",
			p.Name, p.Seconds, p.EdgesPerSec, p.P50Millis, p.P95Millis, p.P99Millis)
		if p.ServerP99Millis > 0 {
			fmt.Printf("  server-p99=%.2fms gap=%.1fms", p.ServerP99Millis, p.P99GapMillis)
		}
		fmt.Println()
	}
	for _, f := range sr.Faults {
		fmt.Printf("  fault %-14s [%.2fs,%.2fs]  recovery=%.0fms\n", f.Kind, f.StartSeconds, f.EndSeconds, f.RecoveryMillis)
	}
	for _, l := range sr.Lifecycle {
		switch l.Action {
		case "restart":
			fmt.Printf("  %-20s at %.2fs  recovery=%.0fms\n", l.Action, l.AtSeconds, l.RecoveryMillis)
		case "failover":
			fmt.Printf("  %-20s at %.2fs  promoted=%s\n", l.Action, l.AtSeconds, l.Leader)
		default:
			fmt.Printf("  %-20s at %.2fs\n", l.Action, l.AtSeconds)
		}
	}
	for _, r := range sr.Replicas {
		fmt.Printf("  replica %-20s %-8s applied=%d digest=%s\n", r.Node, r.Role, r.Applied, shortDigest(r.Digest))
	}
	for _, g := range sr.Gates {
		mark := "ok"
		if !g.Pass {
			mark = "FAIL"
		}
		fmt.Printf("  gate %-24s %-4s actual=%.2f limit=%.2f %s\n", g.Name, mark, g.Actual, g.Limit, g.Detail)
	}
	if sr.Error != "" {
		fmt.Printf("  error: %s\n", sr.Error)
	}
}

// shortDigest truncates a hex digest for one-line display; the report
// file keeps the full value.
func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}
