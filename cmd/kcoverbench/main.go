// Command kcoverbench regenerates the repository's experiment tables — the
// reproduction of the paper's Table 1, Table 2 and the per-theorem
// experiments indexed in DESIGN.md §4 and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	kcoverbench                 # run every experiment
//	kcoverbench -list           # list experiment IDs
//	kcoverbench -only E2,E4     # run a subset
//	kcoverbench -seed 7         # change the master seed
//	kcoverbench -wire row       # drive end-to-end experiments over one wire layout
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"streamcover/internal/expt"
)

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default all)")
	seed := flag.Int64("seed", 1, "master random seed")
	format := flag.String("format", "text", "output format: text|csv|markdown")
	wireSel := flag.String("wire", "both", "wire layout for end-to-end experiments: columnar|row|both")
	flag.Parse()

	if err := expt.SetWireLayout(*wireSel); err != nil {
		fmt.Fprintf(os.Stderr, "kcoverbench: %v\n", err)
		os.Exit(1)
	}

	var render func(*expt.Table) error
	switch *format {
	case "text":
		render = func(t *expt.Table) error { return t.Render(os.Stdout) }
	case "csv":
		render = func(t *expt.Table) error { return t.RenderCSV(os.Stdout) }
	case "markdown":
		render = func(t *expt.Table) error { return t.RenderMarkdown(os.Stdout) }
	default:
		fmt.Fprintf(os.Stderr, "kcoverbench: unknown -format %q\n", *format)
		os.Exit(1)
	}

	specs := expt.All()
	if *list {
		for _, s := range specs {
			fmt.Printf("%-4s %s\n", s.ID, s.Name)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	start := time.Now()
	ran := 0
	for _, s := range specs {
		if len(want) > 0 && !want[strings.ToUpper(s.ID)] {
			continue
		}
		t0 := time.Now()
		table, err := s.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "kcoverbench: %s: %v\n", s.ID, err)
			os.Exit(1)
		}
		if err := render(table); err != nil {
			fmt.Fprintf(os.Stderr, "kcoverbench: render %s: %v\n", s.ID, err)
			os.Exit(1)
		}
		if *format == "text" {
			fmt.Printf("   (%s in %v)\n\n", s.ID, time.Since(t0).Round(time.Millisecond))
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "kcoverbench: no experiments matched -only; try -list")
		os.Exit(1)
	}
	if *format == "text" {
		fmt.Printf("ran %d experiments in %v\n", ran, time.Since(start).Round(time.Millisecond))
	}
}
