// Command kcoverd runs the sharded network ingest daemon for the
// streaming Max k-Cover estimator. It accepts framed MKC1 edge batches on
// the ingest port (the protocol in internal/wire), shards them across
// per-session worker estimators, and serves live queries plus metrics
// over HTTP.
//
// Usage:
//
//	kcoverd -listen :7600 -http :7601
//	kcovergen -family planted -server localhost:7600 -session crawl
//	curl 'localhost:7601/query?session=crawl'
//	kcover -server localhost:7600 -session crawl
//
// SIGINT/SIGTERM shut down gracefully: listeners close, worker queues
// drain, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"streamcover/internal/server"
)

func main() {
	var (
		listen  = flag.String("listen", ":7600", "TCP ingest listen address")
		httpA   = flag.String("http", ":7601", "HTTP query/metrics listen address (empty disables)")
		workers = flag.Int("workers", 0, "shard workers per session (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "per-worker batch queue depth (backpressure bound)")
		drain   = flag.Duration("drain", 15*time.Second, "graceful shutdown budget")
	)
	flag.Parse()

	srv := server.New(server.Config{Workers: *workers, QueueDepth: *queue})
	if err := srv.Start(*listen, *httpA); err != nil {
		fmt.Fprintln(os.Stderr, "kcoverd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "kcoverd: ingest on %s", srv.TCPAddr())
	if a := srv.HTTPAddr(); a != nil {
		fmt.Fprintf(os.Stderr, ", http on %s", a)
	}
	fmt.Fprintln(os.Stderr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()

	fmt.Fprintln(os.Stderr, "kcoverd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "kcoverd: shutdown:", err)
		os.Exit(1)
	}
}
