// Command kcoverd runs the sharded network ingest daemon for the
// streaming Max k-Cover estimator. It accepts framed MKC1 edge batches on
// the ingest port (the protocol in internal/wire), shards them across
// per-session worker estimators, and serves live queries plus metrics
// over HTTP.
//
// Usage:
//
//	kcoverd -listen :7600 -http :7601
//	kcovergen -family planted -server localhost:7600 -session crawl
//	curl 'localhost:7601/query?session=crawl'
//	kcover -server localhost:7600 -session crawl
//
// With -data DIR the daemon is durable: sequenced ingest batches are
// written to a per-session WAL before they are acknowledged, estimator
// state is checkpointed on a cadence (and on shutdown), and a restart
// recovers every session — snapshot restore plus WAL tail replay — before
// accepting connections. A SIGKILL therefore loses nothing that was
// acknowledged.
//
// Failure handling: connections carry read/write deadlines (-read-timeout,
// -write-timeout) so a hung peer cannot park a handler forever. When a
// session's durability path breaks — an fsync error, a torn write, a full
// disk — the session degrades instead of dying: it rejects ingest with a
// retryable error (clients park and replay the batches), keeps serving
// queries, and a background loop (-retry-min/-retry-max backoff) repairs
// the WAL and re-checkpoints in place. A full disk puts the whole daemon
// in read-only mode until space frees. /healthz reports ok, degraded or
// read-only (HTTP 503 for the latter two).
//
// Multi-tenancy: with -mem-budget BYTES (requires -data) the daemon
// oversubscribes sessions against a fixed memory budget — cold sessions
// are LRU-evicted down to their checkpoints (workers stopped, estimators
// freed, WAL parked) and transparently rehydrated on their next ingest or
// query, bit-identical to never having been evicted. -session-quota caps
// one session's serialized size; -rehydrate-concurrency bounds
// simultaneous rehydrations (excess wakers get a retryable busy answer).
// /sessions and /metrics report per-session residency and the
// eviction/rehydration counters.
//
// Cluster mode: with -peers (and -node-id naming this node's entry in
// that list) the daemon joins an N-node replication fleet. Sessions place
// onto -replicas nodes by consistent hash; the placement's first node
// leads, the rest follow, mirroring the leader's WAL byte for byte over
// the ingest port (bootstrap rides a checkpoint snapshot) and replaying
// it at the same fixed worker count — so replica estimator state is
// byte-identical and /digest can prove it. Followers reject client
// writes with a leader redirect but serve staleness-bounded reads.
// Cluster mode requires -data (replication ships the WAL). The control
// endpoints /cluster, /digest, /fence, /promote and /leader drive
// inspection and orderly failover: fence the leader, wait for a follower
// to drain the frozen head, then promote that follower.
//
//	kcoverd -listen :7600 -http :7601 -data /var/lib/kcoverd \
//	  -node-id host1:7600 -peers host1:7600,host2:7600,host3:7600
//
// SIGINT/SIGTERM shut down gracefully: listeners close, worker queues
// drain, a final checkpoint is written, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"streamcover/internal/server"
)

func main() {
	var (
		listen  = flag.String("listen", ":7600", "TCP ingest listen address")
		httpA   = flag.String("http", ":7601", "HTTP query/metrics listen address (empty disables)")
		workers = flag.Int("workers", 0, "shard workers per session (0 = GOMAXPROCS)")
		engineW = flag.Int("engine-workers", 1, "batch-engine goroutines inside each worker's estimator (raise when cores outnumber busy shard workers)")
		queue   = flag.Int("queue", 64, "per-worker batch queue depth (backpressure bound)")
		drain   = flag.Duration("drain", 60*time.Second, "graceful shutdown budget (with -data this includes a final checkpoint, which scales with estimator size)")

		dataDir    = flag.String("data", "", "durability directory: checkpoints + WAL per session (empty = in-memory only)")
		checkpoint = flag.Duration("checkpoint", 30*time.Second, "checkpoint cadence (<=0 disables the timer; /checkpoint still works)")
		walSegment = flag.Int64("wal-segment", 0, "WAL segment size in bytes (0 = default)")
		walNoSync  = flag.Bool("wal-nosync", false, "skip fsync on WAL appends (fast, loses acked batches on power loss)")

		memBudget    = flag.Int64("mem-budget", 0, "session memory budget in bytes: LRU-evict cold sessions to their checkpoints past this (0 disables; requires -data)")
		sessionQuota = flag.Int64("session-quota", 0, "per-session serialized-size cap in bytes; ingest over quota is rejected (0 = no cap)")
		rehydrateC   = flag.Int("rehydrate-concurrency", 2, "simultaneous session rehydrations; excess wakers get a retryable busy rejection")

		readTimeout  = flag.Duration("read-timeout", 5*time.Minute, "per-frame read deadline; idle or hung peers are reaped after this (<=0 disables)")
		writeTimeout = flag.Duration("write-timeout", time.Minute, "per-response write deadline (<=0 disables)")
		retryMin     = flag.Duration("retry-min", 50*time.Millisecond, "minimum backoff of a degraded session's durability-recovery loop")
		retryMax     = flag.Duration("retry-max", 5*time.Second, "maximum backoff of a degraded session's durability-recovery loop")

		nodeID         = flag.String("node-id", "", "this node's identity in -peers (its peer-facing ingest address); required with -peers")
		peers          = flag.String("peers", "", "comma-separated ingest addresses of every cluster node (including this one); enables cluster mode, requires -data")
		replicas       = flag.Int("replicas", 0, "session placement width: leader + followers (0 = min(3, nodes))")
		repHeartbeat   = flag.Duration("rep-heartbeat", 250*time.Millisecond, "leader WAL shipper heartbeat while followers are caught up (bounds follower staleness resolution)")
		repReadTimeout = flag.Duration("rep-read-timeout", 2*time.Second, "follower-side bound on the gap between leader frames before the applier redials")
	)
	flag.Parse()

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}
	if len(peerList) > 0 && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "kcoverd: cluster mode (-peers) requires -data (replication ships the WAL)")
		os.Exit(2)
	}
	if *memBudget > 0 && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "kcoverd: -mem-budget requires -data (eviction parks sessions at their checkpoints)")
		os.Exit(2)
	}

	if *readTimeout <= 0 {
		*readTimeout = -1 // Config treats 0 as "use default": make <=0 mean off
	}
	if *writeTimeout <= 0 {
		*writeTimeout = -1
	}

	if *checkpoint <= 0 {
		*checkpoint = -1 // Config treats 0 as "use default": make <=0 mean off
	}
	srv := server.New(server.Config{
		Workers: *workers, EngineWorkers: *engineW, QueueDepth: *queue,
		DataDir:              *dataDir,
		CheckpointEvery:      *checkpoint,
		WALSegmentBytes:      *walSegment,
		WALNoSync:            *walNoSync,
		ReadTimeout:          *readTimeout,
		WriteTimeout:         *writeTimeout,
		RetryMin:             *retryMin,
		RetryMax:             *retryMax,
		MemBudget:            *memBudget,
		SessionQuota:         *sessionQuota,
		RehydrateConcurrency: *rehydrateC,
		NodeID:               *nodeID,
		Peers:                peerList,
		Replicas:             *replicas,
		RepHeartbeat:         *repHeartbeat,
		RepReadTimeout:       *repReadTimeout,
	})
	if err := srv.Start(*listen, *httpA); err != nil {
		fmt.Fprintln(os.Stderr, "kcoverd:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "kcoverd: ingest on %s", srv.TCPAddr())
	if a := srv.HTTPAddr(); a != nil {
		fmt.Fprintf(os.Stderr, ", http on %s", a)
	}
	fmt.Fprintln(os.Stderr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()

	fmt.Fprintln(os.Stderr, "kcoverd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "kcoverd: shutdown:", err)
		os.Exit(1)
	}
}
