// Command kcovergen generates synthetic Max k-Cover edge-arrival stream
// files in the text format read by cmd/kcover ("maxkcover <m> <n>" header,
// one "set elem" pair per line).
//
// Usage:
//
//	kcovergen -family planted -n 20000 -m 2000 -k 40 -order shuffled > stream.txt
//	kcovergen -family dsj -m 8192 -alpha 16 -no > hard.txt
//	kcovergen -family planted -server localhost:7600 -session crawl
//
// Families: uniform, zipf, planted, largesets, smallsets, commonheavy,
// graph, dsj (the Section 5 lower-bound instance).
//
// With -server, the generated stream is pushed into a kcoverd session
// (created on demand with the generator's dims, -k, -estalpha and -seed)
// instead of being written to stdout.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/disjointness"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

func main() {
	var (
		family    = flag.String("family", "planted", "workload family: uniform|zipf|planted|largesets|smallsets|commonheavy|graph|dsj")
		n         = flag.Int("n", 20000, "universe size")
		m         = flag.Int("m", 2000, "number of sets")
		k         = flag.Int("k", 40, "cover budget (recorded for downstream tools)")
		frac      = flag.Float64("frac", 0.8, "planted coverage fraction")
		order     = flag.String("order", "shuffled", "arrival order: set|shuffled|element|roundrobin")
		seed      = flag.Int64("seed", 1, "random seed")
		alpha     = flag.Int("alpha", 16, "dsj: players r")
		noCase    = flag.Bool("no", false, "dsj: generate the No (unique-intersection) case")
		binaryOut = flag.Bool("binary", false, "emit the compact binary format instead of text")
		server    = flag.String("server", "", "stream into a kcoverd session at this address instead of stdout")
		session   = flag.String("session", "kcovergen", "kcoverd session name (with -server)")
		estAlpha  = flag.Float64("estalpha", 4, "estimator approximation target for the kcoverd session (with -server)")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	emit := stream.Write
	if *binaryOut {
		emit = stream.WriteBinary
	}

	if *family == "dsj" {
		ins, err := disjointness.Generate(*alpha, *m, *noCase, 0.9, rng)
		if err != nil {
			fatal(err)
		}
		edges := ins.ToCoverStream()
		if *server != "" {
			if err := sendToServer(*server, *session, edges, *m, *alpha, *k, *estAlpha, *seed); err != nil {
				fatal(err)
			}
		} else if err := emit(os.Stdout, stream.FromEdges(edges), *m, *alpha); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dsj: r=%d m=%d no=%v OPT(1-cover)=%d edges=%d\n",
			*alpha, *m, *noCase, ins.CoverOPT(), ins.Items())
		return
	}

	var in *workload.Instance
	switch *family {
	case "uniform":
		in = workload.Uniform(*n, *m, *k, 20, rng)
	case "zipf":
		in = workload.Zipf(*n, *m, *k, 1.5, *n/10, rng)
	case "planted":
		in = workload.PlantedCover(*n, *m, *k, *frac, 5, rng)
	case "largesets":
		in = workload.PlantedLargeSets(*n, *m, *k, 2, *frac, rng)
	case "smallsets":
		in = workload.PlantedSmallSets(*n, *m, *k, *frac, rng)
	case "commonheavy":
		in = workload.CommonHeavy(*n, *m, *k, *n/50, 0.3, 3, rng)
	case "graph":
		in = workload.GraphNeighborhoods(*n, *k, 10, rng)
	default:
		fatal(fmt.Errorf("unknown family %q", *family))
	}

	var ord stream.Order
	switch *order {
	case "set":
		ord = stream.SetArrival
	case "shuffled":
		ord = stream.Shuffled
	case "element":
		ord = stream.ElementMajor
	case "roundrobin":
		ord = stream.RoundRobin
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}
	it := stream.Linearize(in.System, ord, rng)
	if *server != "" {
		err := sendToServer(*server, *session, it.Edges(), in.System.M(), in.System.N,
			*k, *estAlpha, *seed)
		if err != nil {
			fatal(err)
		}
	} else if err := emit(os.Stdout, it, in.System.M(), in.System.N); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: edges=%d", in.Name, in.System.Edges())
	if in.PlantedIDs != nil {
		fmt.Fprintf(os.Stderr, " plantedOPT=%d", in.PlantedCoverage)
	}
	fmt.Fprintln(os.Stderr)
}

// sendToServer creates (idempotently) a kcoverd session and streams the
// generated edges into it with the client library's batching writer.
func sendToServer(addr, name string, edges []stream.Edge, m, n, k int, alpha float64, seed int64) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	sess, err := c.Create(name, m, n, k, alpha, seed)
	if err != nil {
		return err
	}
	converted := make([]streamcover.Edge, len(edges))
	for i, e := range edges {
		converted[i] = streamcover.Edge(e)
	}
	if err := sess.Send(converted); err != nil {
		return err
	}
	if err := sess.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sent %d edges to session %q at %s\n", len(edges), name, addr)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcovergen:", err)
	os.Exit(1)
}
