// Command kcovergen generates synthetic Max k-Cover edge-arrival stream
// files in the text format read by cmd/kcover ("maxkcover <m> <n>" header,
// one "set elem" pair per line).
//
// Usage:
//
//	kcovergen -family planted -n 20000 -m 2000 -k 40 -order shuffled > stream.txt
//	kcovergen -family dsj -m 8192 -alpha 16 -no > hard.txt
//
// Families: uniform, zipf, planted, largesets, smallsets, commonheavy,
// graph, dsj (the Section 5 lower-bound instance).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"streamcover/internal/disjointness"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

func main() {
	var (
		family    = flag.String("family", "planted", "workload family: uniform|zipf|planted|largesets|smallsets|commonheavy|graph|dsj")
		n         = flag.Int("n", 20000, "universe size")
		m         = flag.Int("m", 2000, "number of sets")
		k         = flag.Int("k", 40, "cover budget (recorded for downstream tools)")
		frac      = flag.Float64("frac", 0.8, "planted coverage fraction")
		order     = flag.String("order", "shuffled", "arrival order: set|shuffled|element|roundrobin")
		seed      = flag.Int64("seed", 1, "random seed")
		alpha     = flag.Int("alpha", 16, "dsj: players r")
		noCase    = flag.Bool("no", false, "dsj: generate the No (unique-intersection) case")
		binaryOut = flag.Bool("binary", false, "emit the compact binary format instead of text")
	)
	flag.Parse()
	rng := rand.New(rand.NewSource(*seed))
	emit := stream.Write
	if *binaryOut {
		emit = stream.WriteBinary
	}

	if *family == "dsj" {
		ins, err := disjointness.Generate(*alpha, *m, *noCase, 0.9, rng)
		if err != nil {
			fatal(err)
		}
		it := stream.FromEdges(ins.ToCoverStream())
		if err := emit(os.Stdout, it, *m, *alpha); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dsj: r=%d m=%d no=%v OPT(1-cover)=%d edges=%d\n",
			*alpha, *m, *noCase, ins.CoverOPT(), ins.Items())
		return
	}

	var in *workload.Instance
	switch *family {
	case "uniform":
		in = workload.Uniform(*n, *m, *k, 20, rng)
	case "zipf":
		in = workload.Zipf(*n, *m, *k, 1.5, *n/10, rng)
	case "planted":
		in = workload.PlantedCover(*n, *m, *k, *frac, 5, rng)
	case "largesets":
		in = workload.PlantedLargeSets(*n, *m, *k, 2, *frac, rng)
	case "smallsets":
		in = workload.PlantedSmallSets(*n, *m, *k, *frac, rng)
	case "commonheavy":
		in = workload.CommonHeavy(*n, *m, *k, *n/50, 0.3, 3, rng)
	case "graph":
		in = workload.GraphNeighborhoods(*n, *k, 10, rng)
	default:
		fatal(fmt.Errorf("unknown family %q", *family))
	}

	var ord stream.Order
	switch *order {
	case "set":
		ord = stream.SetArrival
	case "shuffled":
		ord = stream.Shuffled
	case "element":
		ord = stream.ElementMajor
	case "roundrobin":
		ord = stream.RoundRobin
	default:
		fatal(fmt.Errorf("unknown order %q", *order))
	}
	it := stream.Linearize(in.System, ord, rng)
	if err := emit(os.Stdout, it, in.System.M(), in.System.N); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s: edges=%d", in.Name, in.System.Edges())
	if in.PlantedIDs != nil {
		fmt.Fprintf(os.Stderr, " plantedOPT=%d", in.PlantedCoverage)
	}
	fmt.Fprintln(os.Stderr)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcovergen:", err)
	os.Exit(1)
}
