// Command kcoverdensity measures session density under oversubscription:
// how many live tenant sessions one node can address per GB of estimator
// memory, with and without a memory budget (server.Config.MemBudget).
//
// The benchmark runs the same seeded Zipf tenant workload twice against an
// in-process durable kcoverd:
//
//   - baseline: MemBudget 0 — every session stays hydrated, so the node's
//     footprint is the sum of every tenant's serialized estimator state,
//     measured by a full checkpoint sweep (real encode sizes, not
//     estimates).
//   - budgeted: MemBudget = baseline/divisor — cold tenants LRU-evict to
//     their checkpoints and rehydrate on touch, so the same tenant count
//     is addressable inside a fraction of the memory.
//
// Each run drives two passes: pass A spreads the stream across every
// tenant (and a checkpoint sweep charges real sizes, which in the
// budgeted run immediately evicts the long tail), pass B replays the same
// Zipf access pattern against the now-oversubscribed node, so every cold
// touch pays a real rehydration whose latency lands in the server's
// rehydration histogram. The run is gated on exactly-once: the summed
// per-tenant applied count must equal everything the client sent.
//
// Output (BENCH_density.json): per-run footprints and wall times, the
// eviction/rehydration counters, rehydration p50/p95/p99, and the
// headline sessions-per-GB ratio between the two runs.
//
// Usage:
//
//	kcoverdensity [-tenants 48] [-skew 1.1] [-batches 400] [-divisor 6]
//	              [-short] [-out BENCH_density.json]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"time"

	streamcover "streamcover"
	"streamcover/internal/client"
	"streamcover/internal/server"
	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

type runStats struct {
	MemBudget        int64   `json:"mem_budget"`
	ResidentBytes    int64   `json:"resident_bytes"`
	ResidentSessions int64   `json:"resident_sessions"`
	EvictedSessions  int64   `json:"evicted_sessions"`
	Evictions        int64   `json:"evictions_total"`
	Rehydrations     int64   `json:"rehydrations_total"`
	RehydrateP50Ms   float64 `json:"rehydration_p50_ms,omitempty"`
	RehydrateP95Ms   float64 `json:"rehydration_p95_ms,omitempty"`
	RehydrateP99Ms   float64 `json:"rehydration_p99_ms,omitempty"`
	ArenaLeases      int64   `json:"intern_arena_leases"`
	ArenaHits        int64   `json:"intern_arena_hits"`
	EdgesSent        int64   `json:"edges_sent"`
	EdgesApplied     int64   `json:"edges_applied"`
	SpreadSeconds    float64 `json:"spread_seconds"`
	ChurnSeconds     float64 `json:"churn_seconds"`
	SessionsPerGB    float64 `json:"sessions_per_gb"`
}

type report struct {
	GeneratedAt string         `json:"generated_at"`
	Workload    map[string]any `json:"workload"`
	Tenants     int            `json:"tenants"`
	Skew        float64        `json:"skew"`
	Seed        int64          `json:"seed"`
	Batches     int            `json:"batches"`
	BatchEdges  int            `json:"batch_edges"`
	Baseline    runStats       `json:"baseline"`
	Budgeted    runStats       `json:"budgeted"`
	// DensityRatio is the headline number: sessions addressable per GB
	// under the budget vs always-hydrated — the oversubscription win.
	DensityRatio float64 `json:"density_ratio"`
}

func main() {
	var (
		tenants    = flag.Int("tenants", 48, "tenant sessions to spread the stream over")
		skew       = flag.Float64("skew", 1.1, "tenant-pick Zipf exponent (0 = uniform)")
		seed       = flag.Int64("seed", 42, "workload + tenant-pick seed")
		batches    = flag.Int("batches", 400, "batches per pass (two passes per run)")
		batchEdges = flag.Int("batch-edges", 512, "edges per batch")
		divisor    = flag.Int64("divisor", 6, "budgeted run's MemBudget = baseline footprint / divisor")
		short      = flag.Bool("short", false, "CI smoke sizing (fewer tenants and batches)")
		out        = flag.String("out", "BENCH_density.json", "report path")
	)
	flag.Parse()
	if *short {
		*tenants, *batches = 16, 120
	}
	if *divisor < 2 {
		fmt.Fprintln(os.Stderr, "kcoverdensity: -divisor must be >= 2")
		os.Exit(2)
	}

	// One seeded stream, reused verbatim by both runs and both passes.
	rng := rand.New(rand.NewSource(*seed))
	inst, err := workload.FromFamily("uniform", workload.FamilyParams{N: 500, M: 60, K: 5}, rng)
	if err != nil {
		fatal(err)
	}
	sl := stream.Linearize(inst.System, stream.Shuffled, rng)
	sedges := sl.Edges()
	edges := make([]streamcover.Edge, len(sedges))
	for i, e := range sedges {
		edges[i] = streamcover.Edge(e)
	}
	m, n, k := len(inst.System.Sets), inst.System.N, inst.K

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Workload:    map[string]any{"family": "uniform", "n": n, "m": m, "k": k, "alpha": 4.0},
		Tenants:     *tenants, Skew: *skew, Seed: *seed,
		Batches: *batches, BatchEdges: *batchEdges,
	}

	cfg := benchConfig{
		tenants: *tenants, skew: *skew, seed: *seed,
		batches: *batches, batchEdges: *batchEdges,
		edges: edges, m: m, n: n, k: k,
	}
	fmt.Fprintf(os.Stderr, "kcoverdensity: baseline (unbudgeted) run: %d tenants, %d batches/pass\n", *tenants, *batches)
	base, err := cfg.run(0)
	if err != nil {
		fatal(fmt.Errorf("baseline run: %w", err))
	}
	if base.ResidentBytes == 0 {
		fatal(fmt.Errorf("baseline footprint measured zero"))
	}
	budget := base.ResidentBytes / *divisor
	fmt.Fprintf(os.Stderr, "kcoverdensity: baseline footprint %d bytes; budgeted run at %d bytes\n", base.ResidentBytes, budget)
	bud, err := cfg.run(budget)
	if err != nil {
		fatal(fmt.Errorf("budgeted run: %w", err))
	}
	if bud.Rehydrations == 0 || bud.Evictions == 0 {
		fatal(fmt.Errorf("budget never forced churn: evictions=%d rehydrations=%d", bud.Evictions, bud.Rehydrations))
	}

	// Sessions per GB: the baseline needs its full measured footprint to
	// keep all tenants addressable; the budgeted run keeps the same
	// tenants addressable (proven: every tenant answered its final query,
	// exactly-once intact) inside the budget.
	const gb = float64(1 << 30)
	base.SessionsPerGB = float64(cfg.tenants) * gb / float64(base.ResidentBytes)
	bud.SessionsPerGB = float64(cfg.tenants) * gb / float64(budget)
	rep.Baseline, rep.Budgeted = base, bud
	rep.DensityRatio = bud.SessionsPerGB / base.SessionsPerGB

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"kcoverdensity: %.0f sessions/GB budgeted vs %.0f baseline (ratio %.1fx); rehydration p50=%.1fms p99=%.1fms; report %s\n",
		bud.SessionsPerGB, base.SessionsPerGB, rep.DensityRatio, bud.RehydrateP50Ms, bud.RehydrateP99Ms, *out)
}

type benchConfig struct {
	tenants, batches, batchEdges int
	skew                         float64
	seed                         int64
	edges                        []streamcover.Edge
	m, n, k                      int
}

// run executes one full benchmark pass pair against a fresh in-process
// durable server with the given memory budget (0 = always hydrated).
func (c benchConfig) run(budget int64) (runStats, error) {
	var st runStats
	st.MemBudget = budget
	dir, err := os.MkdirTemp("", "kcoverdensity-*")
	if err != nil {
		return st, err
	}
	defer os.RemoveAll(dir)

	srv := server.New(server.Config{
		Workers: 1, DataDir: dir,
		CheckpointEvery: -1, // charges come from explicit sweeps
		WALNoSync:       true,
		MemBudget:       budget,
	})
	if err := srv.Start("127.0.0.1:0", "127.0.0.1:0"); err != nil {
		return st, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()

	cl, err := client.Dial(srv.TCPAddr().String(),
		client.WithBatchSize(c.batchEdges),
		client.WithMaxPending(16),
		client.WithBackoff(10*time.Millisecond, 250*time.Millisecond),
		client.WithFlushInterval(2*time.Millisecond))
	if err != nil {
		return st, err
	}
	defer cl.Close()

	sess := make([]*client.Session, c.tenants)
	for t := range sess {
		if sess[t], err = cl.Create(fmt.Sprintf("t%d", t), c.m, c.n, c.k, 4, c.seed); err != nil {
			return st, fmt.Errorf("create tenant %d: %w", t, err)
		}
	}

	// One pass = batches chunks of the cycled stream, each routed to the
	// tenant a seeded Zipf picker chooses. The picker is re-seeded per
	// pass so both passes (and both runs) replay the same access pattern.
	pass := func() (int64, error) {
		picker := workload.NewTenantPicker(c.tenants, c.skew, c.seed)
		var sent int64
		pos := 0
		for b := 0; b < c.batches; b++ {
			end := pos + c.batchEdges
			if end > len(c.edges) {
				end = len(c.edges)
			}
			chunk := c.edges[pos:end]
			if err := sess[picker.Pick()].Send(chunk); err != nil {
				return sent, err
			}
			sent += int64(len(chunk))
			if pos = end; pos >= len(c.edges) {
				pos = 0
			}
		}
		for t, s := range sess {
			if err := s.Flush(); err != nil {
				return sent, fmt.Errorf("flush tenant %d: %w", t, err)
			}
		}
		return sent, nil
	}

	// Pass A: spread. Every tenant accumulates state; the sweep then
	// charges real serialized sizes — and, under a budget, immediately
	// evicts the cold tail down to it.
	start := time.Now()
	sentA, err := pass()
	if err != nil {
		return st, err
	}
	if err := srv.CheckpointAll(); err != nil {
		return st, err
	}
	st.SpreadSeconds = time.Since(start).Seconds()

	// Pass B: churn. The same access pattern against the oversubscribed
	// node: hot tenants ride resident estimators, cold touches rehydrate.
	start = time.Now()
	sentB, err := pass()
	if err != nil {
		return st, err
	}
	st.ChurnSeconds = time.Since(start).Seconds()
	st.EdgesSent = sentA + sentB

	// Exactly-once across the whole run: the summed per-tenant applied
	// count must equal everything handed to Send.
	for t, s := range sess {
		res, err := s.Query()
		if err != nil {
			return st, fmt.Errorf("query tenant %d: %w", t, err)
		}
		st.EdgesApplied += int64(res.Edges)
	}
	if st.EdgesApplied != st.EdgesSent {
		return st, fmt.Errorf("exactly-once violated: sent %d, applied %d", st.EdgesSent, st.EdgesApplied)
	}

	// Final sweep so the resident footprint reflects end-of-run truth,
	// then scrape the counters.
	if err := srv.CheckpointAll(); err != nil {
		return st, err
	}
	counters, err := scrapeCounters(srv.HTTPAddr().String())
	if err != nil {
		return st, err
	}
	st.ResidentBytes = counters["resident_bytes"]
	st.ResidentSessions = counters["resident_sessions"]
	st.EvictedSessions = counters["evicted_sessions"]
	st.Evictions = counters["evictions_total"]
	st.Rehydrations = counters["rehydrations_total"]
	st.ArenaLeases = counters["intern_arena_leases"]
	st.ArenaHits = counters["intern_arena_hits"]
	st.RehydrateP50Ms = float64(counters["rehydration_p50_nanos"]) / 1e6
	st.RehydrateP95Ms = float64(counters["rehydration_p95_nanos"]) / 1e6
	st.RehydrateP99Ms = float64(counters["rehydration_p99_nanos"]) / 1e6
	if budget > 0 && st.ResidentBytes > budget {
		return st, fmt.Errorf("resident bytes %d ended above budget %d", st.ResidentBytes, budget)
	}
	return st, nil
}

func scrapeCounters(addr string) (map[string]int64, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var body struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Counters, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcoverdensity:", err)
	os.Exit(1)
}
