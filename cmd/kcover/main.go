// Command kcover runs the paper's single-pass estimator/reporter on an
// edge-arrival stream file (the format kcovergen emits) and prints the
// coverage estimate, the reported k-cover, its exact coverage, and the
// space used — optionally alongside the offline greedy baseline.
//
// Usage:
//
//	kcovergen -family planted | kcover -k 40 -alpha 4
//	kcover -k 40 -alpha 8 -greedy stream.txt
//	kcover -server localhost:7600 -session crawl stream.txt   # feed the daemon, then query
//	kcover -server localhost:7600 -session crawl              # query only
//
// With -server, kcover talks to a kcoverd daemon instead of running the
// estimator in-process: a file argument is streamed into the named
// session first (created on demand with -k, -alpha, -seed); either way
// the session is then queried and the live estimate printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"streamcover"
	"streamcover/internal/client"
	"streamcover/internal/stream"
)

func main() {
	var (
		k         = flag.Int("k", 10, "cover budget")
		alpha     = flag.Float64("alpha", 4, "approximation target (>= 1)")
		seed      = flag.Int64("seed", 1, "random seed")
		greedy    = flag.Bool("greedy", false, "also run the offline greedy baseline")
		parallel  = flag.Int("parallel", 1, "worker goroutines (ladder-parallel; same result)")
		breakdown = flag.Bool("breakdown", false, "print per-component space breakdown")
		server    = flag.String("server", "", "kcoverd address: ingest the input there and query the live session")
		session   = flag.String("session", "kcovergen", "kcoverd session name (with -server)")
	)
	flag.Parse()

	if *server != "" {
		serverMode(*server, *session, *k, *alpha, *seed)
		return
	}

	in := os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d args", flag.NArg()))
	}

	slice, m, n, err := stream.ReadAuto(in)
	if err != nil {
		fatal(err)
	}
	edges := make([]streamcover.Edge, 0, slice.Len())
	for _, e := range slice.Edges() {
		edges = append(edges, streamcover.Edge{Set: e.Set, Elem: e.Elem})
	}

	est, err := streamcover.NewEstimator(m, n, *k, *alpha, streamcover.WithSeed(*seed))
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	if *parallel > 1 {
		err = est.ProcessAllParallel(edges, *parallel)
	} else {
		err = est.ProcessAll(edges)
	}
	if err != nil {
		fatal(err)
	}
	res := est.Result()
	elapsed := time.Since(start)

	fmt.Printf("stream: m=%d n=%d edges=%d\n", m, n, len(edges))
	fmt.Printf("estimate: %.1f (feasible=%v)\n", res.Coverage, res.Feasible)
	fmt.Printf("space: %d words (%d bytes)\n", res.SpaceWords, res.SpaceWords*8)
	fmt.Printf("time: %v (%.0f edges/s)\n", elapsed.Round(time.Millisecond),
		float64(len(edges))/elapsed.Seconds())
	if len(res.SetIDs) > 0 {
		cov, err := streamcover.Coverage(edges, m, n, res.SetIDs)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("reported: %d sets covering %d elements", len(res.SetIDs), cov)
		if len(res.SetIDs) <= 20 {
			fmt.Printf(" %v", res.SetIDs)
		}
		fmt.Println()
	}
	if *breakdown {
		br := est.SpaceBreakdown()
		keys := make([]string, 0, len(br))
		for part := range br {
			keys = append(keys, part)
		}
		sort.Strings(keys)
		for _, part := range keys {
			fmt.Printf("  space[%s]: %d words\n", part, br[part])
		}
	}
	if *greedy {
		ids, cov, err := streamcover.GreedyCover(edges, m, n, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("offline greedy: %d sets covering %d elements\n", len(ids), cov)
	}
}

// serverMode feeds an optional input file into a kcoverd session and
// prints the session's live estimate.
func serverMode(addr, name string, k int, alpha float64, seed int64) {
	c, err := client.Dial(addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	sess := c.Session(name)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		slice, m, n, err := stream.ReadAuto(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		sess, err = c.Create(name, m, n, k, alpha, seed)
		if err != nil {
			fatal(err)
		}
		edges := make([]streamcover.Edge, slice.Len())
		for i, e := range slice.Edges() {
			edges[i] = streamcover.Edge(e)
		}
		start := time.Now()
		if err := sess.Send(edges); err != nil {
			fatal(err)
		}
		if err := sess.Flush(); err != nil {
			fatal(err)
		}
		elapsed := time.Since(start)
		fmt.Printf("ingested: %d edges into session %q (%v, %.0f edges/s)\n",
			len(edges), name, elapsed.Round(time.Millisecond),
			float64(len(edges))/elapsed.Seconds())
	} else if flag.NArg() > 1 {
		fatal(fmt.Errorf("at most one input file, got %d args", flag.NArg()))
	}

	res, err := sess.Query()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("session: %s@%s edges=%d\n", name, addr, res.Edges)
	fmt.Printf("estimate: %.1f (feasible=%v)\n", res.Coverage, res.Feasible)
	fmt.Printf("space: %d words (%d bytes)\n", res.SpaceWords, res.SpaceWords*8)
	if len(res.SetIDs) > 0 {
		fmt.Printf("reported: %d sets", len(res.SetIDs))
		if len(res.SetIDs) <= 20 {
			fmt.Printf(" %v", res.SetIDs)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kcover:", err)
	os.Exit(1)
}
