package streamcover

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func snapEdges(seed int64, m, n, count int) []Edge {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]Edge, count)
	for i := range edges {
		edges[i] = Edge{Set: uint32(rng.Intn(m)), Elem: uint32(rng.Intn(n))}
	}
	return edges
}

// TestEncodeDecodeRoundTrip pins the tentpole guarantee at the facade:
// a decoded estimator has the same future outputs and space accounting as
// the original, across all exposed options.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"defaults", nil},
		{"seeded", []Option{WithSeed(99)}},
		{"boosted", []Option{WithSeed(7), WithRepetitions(2)}},
		{"hll", []Option{WithSeed(5), WithHLLBackend()}},
		{"tight ladder", []Option{WithGuessBase(2)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			orig, err := NewEstimator(50, 300, 4, 4, tc.opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := orig.ProcessAll(snapEdges(3, 50, 300, 3000)); err != nil {
				t.Fatal(err)
			}
			blob, err := orig.Encode()
			if err != nil {
				t.Fatal(err)
			}
			dec, err := DecodeEstimator(blob)
			if err != nil {
				t.Fatal(err)
			}
			if dec.Edges() != orig.Edges() {
				t.Fatalf("edge count: %d vs %d", dec.Edges(), orig.Edges())
			}
			// Continue both on a suffix and compare everything observable.
			suffix := snapEdges(4, 50, 300, 2000)
			if err := orig.ProcessAll(suffix); err != nil {
				t.Fatal(err)
			}
			if err := dec.ProcessAll(suffix); err != nil {
				t.Fatal(err)
			}
			r1, r2 := orig.Result(), dec.Result()
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("results diverged:\n  orig     %+v\n  restored %+v", r1, r2)
			}
			b1, err := orig.Encode()
			if err != nil {
				t.Fatal(err)
			}
			b2, err := dec.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(b1, b2) {
				t.Fatal("re-encoded states differ")
			}
		})
	}
}

// TestSnapshotBatchScratchInterplay pins the contract between snapshots
// and PR 2's batch scratch: the scratch is excluded from encoding (a
// scalar-path and a batch-path estimator with equal state encode
// byte-identically) and rebuilt lazily after decode (a decoded estimator
// immediately takes the batch path and stays bit-identical to the scalar
// path). Clone sits in the middle: clone-then-encode equals encode.
func TestSnapshotBatchScratchInterplay(t *testing.T) {
	edges := snapEdges(11, 40, 250, 4000)
	scalar, err := NewEstimator(40, 250, 3, 4, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if err := scalar.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	batched, err := NewEstimator(40, 250, 3, 4, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(edges); off += 300 {
		end := off + 300
		if end > len(edges) {
			end = len(edges)
		}
		if err := batched.ProcessBatch(edges[off:end]); err != nil {
			t.Fatal(err)
		}
	}

	bScalar, err := scalar.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bBatched, err := batched.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bScalar, bBatched) {
		t.Fatal("batch scratch leaked into the encoding")
	}

	// Clone must encode identically to its source (the clone's scratch
	// starts empty, the source's may be warm — neither is state).
	clone, err := batched.Clone()
	if err != nil {
		t.Fatal(err)
	}
	bClone, err := clone.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bClone, bBatched) {
		t.Fatal("clone encodes differently from its source")
	}

	// A decoded estimator's first act is a batch: the lazily rebuilt
	// scratch must reproduce the scalar path bit for bit.
	dec, err := DecodeEstimator(bScalar)
	if err != nil {
		t.Fatal(err)
	}
	suffix := snapEdges(12, 40, 250, 1500)
	if err := dec.ProcessBatch(suffix); err != nil {
		t.Fatal(err)
	}
	for _, e := range suffix {
		if err := scalar.Process(e); err != nil {
			t.Fatal(err)
		}
	}
	if r1, r2 := scalar.Result(), dec.Result(); !reflect.DeepEqual(r1, r2) {
		t.Fatalf("post-decode batch path diverged from scalar:\n  scalar  %+v\n  decoded %+v", r1, r2)
	}
}

// FuzzDecodeEstimator drives the full snapshot decoder — envelope, header
// and the recursive state codec underneath — with arbitrary bytes. Every
// outcome must be a clean error or a working estimator, never a panic.
func FuzzDecodeEstimator(f *testing.F) {
	small, err := NewEstimator(10, 50, 2, 4)
	if err != nil {
		f.Fatal(err)
	}
	if err := small.ProcessAll(snapEdges(2, 10, 50, 200)); err != nil {
		f.Fatal(err)
	}
	blob, err := small.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add(blob[:len(blob)-7])
	f.Add([]byte{})
	f.Add([]byte("SCSN"))
	mangled := append([]byte{}, blob...)
	mangled[len(mangled)/3] ^= 0x10
	f.Add(mangled)
	f.Fuzz(func(t *testing.T, data []byte) {
		est, err := DecodeEstimator(data)
		if err != nil {
			return
		}
		// An accepted snapshot must yield a usable estimator.
		_ = est.Result()
	})
}

func TestDecodeEstimatorMalformed(t *testing.T) {
	est, err := NewEstimator(30, 200, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.ProcessAll(snapEdges(8, 30, 200, 1000)); err != nil {
		t.Fatal(err)
	}
	blob, err := est.Encode()
	if err != nil {
		t.Fatal(err)
	}
	corrupt := append([]byte{}, blob...)
	corrupt[len(corrupt)/2] ^= 0x40
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"garbage", []byte("not a snapshot at all")},
		{"truncated header", blob[:10]},
		{"truncated payload", blob[:len(blob)-20]},
		{"bit flip", corrupt},
		{"trailing garbage", append(append([]byte{}, blob...), 1, 2, 3)},
	} {
		if _, err := DecodeEstimator(tc.data); err == nil {
			t.Fatalf("%s: expected error", tc.name)
		}
	}
}
