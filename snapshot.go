package streamcover

import (
	"encoding/binary"
	"fmt"
	"math"

	"streamcover/internal/snapshot"
)

// Encode serializes the estimator — dimensions, resolved options and full
// sketch state — into a self-contained, checksummed blob. DecodeEstimator
// rebuilds an estimator that is behaviorally identical to this one: same
// future outputs under any further Process/Merge/Result sequence, same
// SpaceWords. The blob captures the options the facade exposes (seed,
// repetitions, guess base, distinct-count backend); decoding verifies
// every hash function against a fresh same-seed construction, so a blob
// from an incompatible build fails loudly rather than estimating quietly.
//
// Encode must not be called concurrently with Process.
func (e *Estimator) Encode() ([]byte, error) {
	buf := make([]byte, 0, 1<<16)
	buf = binary.AppendUvarint(buf, uint64(e.m))
	buf = binary.AppendUvarint(buf, uint64(e.n))
	buf = binary.AppendUvarint(buf, uint64(e.k))
	buf = binary.AppendUvarint(buf, math.Float64bits(e.alpha))
	buf = binary.AppendVarint(buf, e.cfg.seed)
	buf = binary.AppendUvarint(buf, uint64(e.cfg.params.Reps))
	buf = binary.AppendUvarint(buf, math.Float64bits(e.cfg.params.ZBase))
	if e.cfg.params.UseHLL {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(e.edges))
	state, err := e.inner.AppendState(buf)
	if err != nil {
		return nil, fmt.Errorf("streamcover: encode: %w", err)
	}
	return snapshot.Seal(state), nil
}

// DecodeEstimator rebuilds an estimator from an Encode blob.
func DecodeEstimator(data []byte) (*Estimator, error) {
	payload, err := snapshot.Open(data)
	if err != nil {
		return nil, fmt.Errorf("streamcover: decode: %w", err)
	}
	next := func(what string) (uint64, error) {
		v, w := binary.Uvarint(payload)
		if w <= 0 {
			return 0, fmt.Errorf("streamcover: decode: bad %s", what)
		}
		payload = payload[w:]
		return v, nil
	}
	m, err := next("m")
	if err != nil {
		return nil, err
	}
	n, err := next("n")
	if err != nil {
		return nil, err
	}
	k, err := next("k")
	if err != nil {
		return nil, err
	}
	alphaBits, err := next("alpha")
	if err != nil {
		return nil, err
	}
	seed, w := binary.Varint(payload)
	if w <= 0 {
		return nil, fmt.Errorf("streamcover: decode: bad seed")
	}
	payload = payload[w:]
	reps, err := next("repetitions")
	if err != nil {
		return nil, err
	}
	zbaseBits, err := next("guess base")
	if err != nil {
		return nil, err
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("streamcover: decode: truncated backend flag")
	}
	useHLL := payload[0] != 0
	payload = payload[1:]
	edges, err := next("edge count")
	if err != nil {
		return nil, err
	}
	if m > 1<<31 || n > 1<<31 || k > 1<<31 || reps > 1<<20 || edges > 1<<62 {
		return nil, fmt.Errorf("streamcover: decode: implausible header")
	}

	// Reconstruct the option list so the decoded estimator clones and
	// merges exactly like one built by the original caller.
	opts := []Option{WithSeed(seed), WithRepetitions(int(reps)), WithGuessBase(math.Float64frombits(zbaseBits))}
	if useHLL {
		opts = append(opts, WithHLLBackend())
	}
	est, err := NewEstimator(int(m), int(n), int(k), math.Float64frombits(alphaBits), opts...)
	if err != nil {
		return nil, fmt.Errorf("streamcover: decode: %w", err)
	}
	if err := est.inner.RestoreState(payload); err != nil {
		return nil, fmt.Errorf("streamcover: decode: %w", err)
	}
	est.edges = int(edges)
	return est, nil
}
