// Package streamcover is a single-pass streaming library for the maximum
// k-coverage problem in the general edge-arrival model, implementing
//
//	Piotr Indyk and Ali Vakilian.
//	"Tight Trade-offs for the Maximum k-Coverage Problem in the General
//	Streaming Model." PODS 2019.
//
// Given a stream of (set, element) pairs in arbitrary order — a set's
// elements interleaved with every other set's — the library estimates the
// largest coverage achievable by k sets within an approximation factor α,
// and reports k witnessing sets, in Õ(m/α²+ k) space (m = number of sets).
// That trade-off is optimal: the paper proves a matching Ω(m/α²) lower
// bound, reproduced in this repository's experiment suite.
//
// # Quick start
//
//	est, err := streamcover.NewEstimator(m, n, k, alpha)
//	if err != nil { ... }
//	for _, e := range edges {            // single pass, any order
//		est.Process(streamcover.Edge{Set: e.Set, Elem: e.Elem})
//	}
//	res := est.Result()
//	// res.Coverage ∈ [OPT/Õ(α), OPT] w.h.p.; res.SetIDs ⊆ [m] backs it.
//
// The estimator is one-shot: build, stream once, read the result.
// All randomness derives from the configurable seed, so runs are
// reproducible.
//
// See DESIGN.md for the algorithm inventory and EXPERIMENTS.md for the
// reproduction of the paper's complexity table and theorems.
package streamcover
