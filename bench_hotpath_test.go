package streamcover

// Hot-path benchmarks: the per-edge ingest loop vs the batched one on the
// default kcovergen workload (planted, n=20000 m=2000 k=40 frac=0.8,
// estimator alpha 4 — the same instance `kcovergen | kcover` processes out
// of the box). Both benchmarks stream into a pre-warmed estimator, so they
// measure steady-state ingest cost, not sketch construction. The headline
// numbers live in BENCH_hotpath.json; regenerate with
//
//	go test -run=NONE -bench='ProcessEdge|ProcessBatch$' -benchtime=3x .

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"streamcover/internal/stream"
	"streamcover/internal/workload"
)

// hotpathBatchSize matches the kcoverd client's default ingest batch.
const hotpathBatchSize = 8192

// hotpathStream builds the default kcovergen planted instance in shuffled
// arrival order and an estimator already warmed on one full pass (steady
// state: samples taken, layers routed, maps at working size).
func hotpathStream(b *testing.B) ([]Edge, *Estimator) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	in := workload.PlantedCover(20000, 2000, 40, 0.8, 5, rng)
	raw := stream.Linearize(in.System, stream.Shuffled, rng).Edges()
	edges := make([]Edge, len(raw))
	for i, e := range raw {
		edges[i] = Edge{Set: e.Set, Elem: e.Elem}
	}
	est, err := NewEstimator(in.System.M(), in.System.N, in.K, 4, WithSeed(7))
	if err != nil {
		b.Fatal(err)
	}
	if err := est.ProcessBatch(edges); err != nil {
		b.Fatal(err)
	}
	return edges, est
}

// BenchmarkProcessEdge is the sequential baseline: one Process call per
// edge, every sub-sketch re-hashing the edge's IDs itself.
func BenchmarkProcessEdge(b *testing.B) {
	edges, est := hotpathStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, e := range edges {
			if err := est.Process(e); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}

// BenchmarkProcessBatchParallel scales the batch engine across worker
// counts on one estimator: the (guess, repetition) oracle units are
// fanned over the persistent pool with a shared per-chunk prepass. The
// workers=1 case is the sequential path (no helper goroutines) and the
// reference for engine overhead; on a single-CPU host the higher counts
// measure overhead only, on multi-core they measure scaling.
func BenchmarkProcessBatchParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			edges, est := hotpathStream(b)
			est.SetParallelism(workers)
			defer est.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for off := 0; off < len(edges); off += hotpathBatchSize {
					end := off + hotpathBatchSize
					if end > len(edges) {
						end = len(edges)
					}
					if err := est.ProcessBatch(edges[off:end]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		})
	}
}

// BenchmarkProcessBatch streams the same edges through the memoized batch
// path in kcoverd-sized batches.
func BenchmarkProcessBatch(b *testing.B) {
	edges, est := hotpathStream(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(edges); off += hotpathBatchSize {
			end := off + hotpathBatchSize
			if end > len(edges) {
				end = len(edges)
			}
			if err := est.ProcessBatch(edges[off:end]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(edges))*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
}
