package streamcover

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
)

// feedRandomBatches streams edges into est through ProcessBatch in
// randomly sized batches (including tiny ones and ones crossing the
// engine's internal chunk boundary), driven by rng.
func feedRandomBatches(t *testing.T, est *Estimator, edges []Edge, rng *rand.Rand) {
	t.Helper()
	for off := 0; off < len(edges); {
		sz := 1 + rng.Intn(1<<uint(2+rng.Intn(14))) // 1 .. ~16k, log-uniform-ish
		if off+sz > len(edges) {
			sz = len(edges) - off
		}
		if err := est.ProcessBatch(edges[off : off+sz]); err != nil {
			t.Fatal(err)
		}
		off += sz
	}
}

// TestParallelBatchEquivalence is the engine's equivalence suite: the
// parallel ProcessBatch must leave the estimator bit-for-bit identical to
// the sequential one — compared via Encode, which captures every sketch
// bit — across worker counts, random batch splits, and a mid-stream
// parallelism change. Run under -race in CI, this also polices the
// engine's prepass sharing and work-stealing handshake.
func TestParallelBatchEquivalence(t *testing.T) {
	edges := plantedEdges(400, 4000, 8, 3200, 9)
	build := func(workers int) *Estimator {
		est, err := NewEstimator(400, 4000, 8, 4, WithSeed(21), WithParallelism(workers))
		if err != nil {
			t.Fatal(err)
		}
		return est
	}

	ref := build(1)
	feedRandomBatches(t, ref, edges, rand.New(rand.NewSource(100)))
	want, err := ref.Encode()
	if err != nil {
		t.Fatal(err)
	}

	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	for _, w := range workerCounts {
		est := build(w)
		defer est.Close()
		// A different split proves batch boundaries don't matter either.
		feedRandomBatches(t, est, edges, rand.New(rand.NewSource(int64(200+w))))
		got, err := est.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("workers=%d: parallel ProcessBatch state diverged from sequential", w)
		}
	}

	// Changing parallelism mid-stream (engine resize) must not change
	// results either.
	est := build(1)
	defer est.Close()
	half := len(edges) / 2
	feed := rand.New(rand.NewSource(300))
	feedRandomBatches(t, est, edges[:half], feed)
	est.SetParallelism(4)
	feedRandomBatches(t, est, edges[half:], feed)
	est.SetParallelism(2)
	got, err := est.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("mid-stream SetParallelism diverged from sequential")
	}
}

// TestParallelBatchEngineRelease checks Close releases the helper
// goroutines and that the estimator keeps working afterwards (the engine
// restarts lazily).
func TestParallelBatchEngineRelease(t *testing.T) {
	edges := plantedEdges(200, 2000, 5, 1500, 3)
	est, err := NewEstimator(200, 2000, 5, 4, WithSeed(5), WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := est.ProcessBatch(edges); err != nil {
		t.Fatal(err)
	}
	est.Close()
	if err := est.ProcessBatch(edges); err != nil { // engine restarts lazily
		t.Fatal(err)
	}
	got, err := est.Encode()
	if err != nil {
		t.Fatal(err)
	}

	ref, err := NewEstimator(200, 2000, 5, 4, WithSeed(5), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := ref.ProcessBatch(edges); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("state after Close+reuse diverged from sequential double feed")
	}
	est.Close()
	est.Close() // idempotent
}
