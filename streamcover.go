package streamcover

import (
	"fmt"
	"math/rand"

	"streamcover/internal/core"
	"streamcover/internal/hash"
	"streamcover/internal/setsystem"
	"streamcover/internal/stream"
)

// Edge is one (set, element) arrival: element Elem belongs to set Set.
// Set IDs must lie in [0, m) and element IDs in [0, n) as declared to
// NewEstimator.
type Edge struct {
	Set  uint32
	Elem uint32
}

// Result is the outcome of a completed pass.
type Result struct {
	// Coverage estimates the optimal k-cover's size: with high
	// probability OPT/Õ(α) ≤ Coverage ≤ OPT.
	Coverage float64
	// Feasible is false when the optimum is below the smallest detectable
	// scale (Coverage is then 0).
	Feasible bool
	// SetIDs are up to k set IDs whose true coverage backs the estimate —
	// the α-approximate solution of the paper's reporting variant
	// (Theorem 3.2). May be shorter than k; padding with arbitrary
	// additional sets never decreases coverage.
	SetIDs []uint32
	// SpaceWords is the number of 64-bit words of state the estimator
	// retained — the quantity the paper's Õ(m/α² + k) bound governs.
	SpaceWords int
}

// Option customizes an Estimator.
type Option func(*config)

type config struct {
	seed   int64
	params core.Params
	// par is the batch-engine worker count (0 = GOMAXPROCS, the default).
	// It is an execution knob, not sketch state: it never affects results
	// or the Encode wire format, so Encode deliberately omits it.
	par int
}

// WithSeed fixes the random seed (default 1). Two estimators with equal
// dimensions, options and seed process identically.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithRepetitions sets the number of independent boosting repetitions per
// coverage guess (the paper's log(1/δ) loop; default 1). More repetitions
// lower the failure probability at proportional space and time cost.
func WithRepetitions(reps int) Option {
	return func(c *config) {
		if reps > 0 {
			c.params.Reps = reps
		}
	}
}

// WithGuessBase sets the ratio of the coverage-guess ladder (default 4;
// the paper uses 2). A smaller base tightens the approximation constant
// and increases space and time by the number of extra guesses.
func WithGuessBase(base float64) Option {
	return func(c *config) {
		if base > 1 {
			c.params.ZBase = base
		}
	}
}

// WithParallelism sets how many workers the batch engine fans each
// ProcessBatch/ProcessAll call across (default GOMAXPROCS; 1 disables the
// engine entirely). The coverage-guess ladder is embarrassingly parallel
// — every (guess, repetition) oracle is independent — so results are
// bit-for-bit identical for every worker count; only wall-clock time
// changes. Workers beyond the oracle-unit count are never started. Can be
// changed later with SetParallelism.
func WithParallelism(workers int) Option {
	return func(c *config) { c.par = workers }
}

// WithHLLBackend switches the distinct-count sketches from the default
// bottom-k L0 to HyperLogLog. Both satisfy the paper's Theorem 2.12
// contract; HLL is smaller at equal error on large universes, the bottom-k
// sketch is exact below its capacity (see experiment E20).
func WithHLLBackend() Option {
	return func(c *config) { c.params.UseHLL = true }
}

// Estimator is the single-pass Max k-Cover estimator/reporter
// (Theorems 3.1 and 3.2 of the paper). It is not safe for concurrent use.
type Estimator struct {
	m, n, k int
	alpha   float64
	opts    []Option
	cfg     config // resolved options, captured for Encode
	inner   *core.Estimator
	edges   int
	conv    []stream.Edge // reusable batch conversion buffer (transient, not sketch state)
}

// NewEstimator builds an estimator for a stream over m sets and n elements
// with cover budget k and approximation target alpha ≥ 1. Space scales as
// Õ(m/α² + k): doubling alpha quarters the sketching state.
func NewEstimator(m, n, k int, alpha float64, opts ...Option) (*Estimator, error) {
	cfg := config{seed: 1, params: core.Practical()}
	for _, o := range opts {
		o(&cfg)
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	inner, err := core.NewEstimator(m, n, k, alpha, cfg.params, core.NewOracleFactory(), rng)
	if err != nil {
		return nil, fmt.Errorf("streamcover: %w", err)
	}
	inner.SetParallelism(cfg.par) // 0 (the default) resolves to GOMAXPROCS
	return &Estimator{m: m, n: n, k: k, alpha: alpha, opts: opts, cfg: cfg, inner: inner}, nil
}

// Clone returns a deep copy of the estimator: a fresh same-seed estimator
// with this one's state merged in. The clone shares no mutable state with
// the original, so one goroutine may keep processing edges into the
// original while another finalizes the clone — this is how kcoverd
// answers queries without stalling ingest.
func (e *Estimator) Clone() (*Estimator, error) {
	fresh, err := NewEstimator(e.m, e.n, e.k, e.alpha, e.opts...)
	if err != nil {
		return nil, err
	}
	if err := fresh.inner.Merge(e.inner); err != nil {
		return nil, fmt.Errorf("streamcover: clone: %w", err)
	}
	fresh.edges = e.edges
	return fresh, nil
}

// Process consumes one edge. Edges may arrive in any order and repeat;
// out-of-range IDs are rejected.
func (e *Estimator) Process(edge Edge) error {
	if int(edge.Set) >= e.m {
		return fmt.Errorf("streamcover: set id %d >= m=%d", edge.Set, e.m)
	}
	if int(edge.Elem) >= e.n {
		return fmt.Errorf("streamcover: element id %d >= n=%d", edge.Elem, e.n)
	}
	e.inner.Process(stream.Edge(edge))
	e.edges++
	return nil
}

// ProcessAll consumes a slice of edges through the batched hot path,
// stopping at the first invalid one (the valid prefix is processed, as
// the per-edge loop it replaces did). The outcome is bit-for-bit
// identical to calling Process on every edge in order.
func (e *Estimator) ProcessAll(edges []Edge) error {
	valid, err := edges, error(nil)
	for i, edge := range edges {
		if int(edge.Set) >= e.m {
			valid, err = edges[:i], fmt.Errorf("streamcover: set id %d >= m=%d", edge.Set, e.m)
			break
		}
		if int(edge.Elem) >= e.n {
			valid, err = edges[:i], fmt.Errorf("streamcover: element id %d >= n=%d", edge.Elem, e.n)
			break
		}
	}
	e.processValidated(valid)
	return err
}

// ProcessBatch consumes one batch of edges through the batched hot path:
// every ID-keyed hash decision (layer routing, supersets, sampling bits,
// pseudo-elements) is computed once per distinct set or element in the
// batch instead of once per edge per sub-sketch, which is where most of
// the per-edge cost lives. The resulting state is bit-for-bit identical
// to calling Process on every edge in order. Unlike ProcessAll, the whole
// batch is validated up front and rejected atomically: on error no edge
// of the batch has been processed.
func (e *Estimator) ProcessBatch(edges []Edge) error {
	for _, edge := range edges {
		if int(edge.Set) >= e.m {
			return fmt.Errorf("streamcover: set id %d >= m=%d", edge.Set, e.m)
		}
		if int(edge.Elem) >= e.n {
			return fmt.Errorf("streamcover: element id %d >= n=%d", edge.Elem, e.n)
		}
	}
	e.processValidated(edges)
	return nil
}

// ProcessColumns consumes one batch of edges in struct-of-arrays form:
// sets[i] and elems[i] are edge i's endpoint IDs, and both columns must
// have equal length. It is the zero-transform counterpart of ProcessBatch
// — a decoded wire batch's ID columns feed the core prepass directly with
// no per-edge structs — with the same semantics: the whole batch is
// validated up front and rejected atomically, and the resulting state is
// bit-for-bit identical to calling Process on every (sets[i], elems[i])
// in order. The columns must stay unmodified for the duration of the call.
func (e *Estimator) ProcessColumns(sets, elems []uint32) error {
	if len(sets) != len(elems) {
		return fmt.Errorf("streamcover: column length mismatch (%d sets, %d elems)", len(sets), len(elems))
	}
	for _, s := range sets {
		if int(s) >= e.m {
			return fmt.Errorf("streamcover: set id %d >= m=%d", s, e.m)
		}
	}
	for _, el := range elems {
		if int(el) >= e.n {
			return fmt.Errorf("streamcover: element id %d >= n=%d", el, e.n)
		}
	}
	e.inner.ProcessColumns(sets, elems)
	e.edges += len(sets)
	return nil
}

// processValidated feeds pre-validated edges to the core batch path via
// the reusable conversion buffer.
func (e *Estimator) processValidated(edges []Edge) {
	if len(edges) == 0 {
		return
	}
	if cap(e.conv) < len(edges) {
		e.conv = make([]stream.Edge, len(edges))
	}
	buf := e.conv[:len(edges)]
	for i, edge := range edges {
		buf[i] = stream.Edge(edge)
	}
	e.inner.ProcessBatch(buf)
	e.edges += len(edges)
}

// SetParallelism changes the batch-engine worker count for all future
// ProcessBatch/ProcessAll calls (≤ 0 selects GOMAXPROCS, 1 disables the
// engine). Results stay bit-for-bit identical at every setting. Not safe
// to call concurrently with Process* calls.
func (e *Estimator) SetParallelism(workers int) { e.inner.SetParallelism(workers) }

// Close releases the batch engine's helper goroutines, if any. The
// estimator remains fully usable — the pool restarts lazily on the next
// batch — so Close is an optional courtesy for long-lived owners that
// retire estimators (kcoverd sessions call it on session close).
func (e *Estimator) Close() { e.inner.Close() }

// InternArena is a shared pool of batch-scratch interner tables for
// co-resident estimators (a node running thousands of sessions). Leased
// tables are cleared before every batch, so pooling never changes
// results; it only caps steady-state working memory at the number of
// *concurrently active* estimators rather than the number alive.
type InternArena struct{ a *hash.Arena }

// InternArenaStats mirrors the arena's traffic counters.
type InternArenaStats struct {
	Leases   uint64 // lease calls on storage-less interners
	Hits     uint64 // of those, satisfied from the free list
	Returns  uint64 // blocks handed back
	Retained int    // blocks currently pooled
}

// NewInternArena returns an arena retaining at most maxBlocks returned
// interner blocks (≤ 0 selects a default).
func NewInternArena(maxBlocks int) *InternArena {
	return &InternArena{a: hash.NewArena(maxBlocks)}
}

// Stats snapshots the arena's counters.
func (ia *InternArena) Stats() InternArenaStats {
	if ia == nil {
		return InternArenaStats{}
	}
	st := ia.a.Stats()
	return InternArenaStats{Leases: st.Leases, Hits: st.Hits, Returns: st.Returns, Retained: st.Retained}
}

// SetInternArena points the estimator's batch scratch at a shared pool.
// Call right after construction, before ingest. A nil arena is allowed
// and means private allocation (the default).
func (e *Estimator) SetInternArena(ia *InternArena) {
	if ia == nil {
		e.inner.SetInternArena(nil)
		return
	}
	e.inner.SetInternArena(ia.a)
}

// ReleaseScratch drops the estimator's transient batch working memory,
// returning pooled interner tables to the arena when one is set. The
// estimator stays fully usable (the next batch reallocates lazily);
// owners call this when an estimator goes idle so a parked session costs
// sketch state only. Not safe concurrently with Process* calls.
func (e *Estimator) ReleaseScratch() {
	e.inner.ReleaseScratch()
	e.conv = nil
}

// ProcessAllParallel consumes an in-memory edge slice using up to
// `workers` goroutines (the coverage-guess ladder is embarrassingly
// parallel). It is SetParallelism(workers) followed by ProcessAll: the
// fan-out runs on the estimator's persistent engine and the parallelism
// setting remains in effect for subsequent batches. The outcome is
// bit-for-bit identical to ProcessAll; only wall-clock time changes. The
// slice must not be mutated during the call, and must not be interleaved
// with concurrent Process calls.
func (e *Estimator) ProcessAllParallel(edges []Edge, workers int) error {
	converted := make([]stream.Edge, len(edges))
	for i, edge := range edges {
		if int(edge.Set) >= e.m {
			return fmt.Errorf("streamcover: set id %d >= m=%d", edge.Set, e.m)
		}
		if int(edge.Elem) >= e.n {
			return fmt.Errorf("streamcover: element id %d >= n=%d", edge.Elem, e.n)
		}
		converted[i] = stream.Edge(edge)
	}
	e.inner.ProcessAllParallel(converted, workers)
	e.edges += len(edges)
	return nil
}

// Edges reports how many edges have been consumed.
func (e *Estimator) Edges() int { return e.edges }

// Result finalizes the pass. It may be called repeatedly; further Process
// calls after Result are permitted but unusual.
func (e *Estimator) Result() Result {
	r := e.inner.Result()
	return Result{
		Coverage:   r.Value,
		Feasible:   r.Feasible,
		SetIDs:     r.SetIDs,
		SpaceWords: e.inner.SpaceWords(),
	}
}

// Merge folds another estimator into this one. Both must have been
// created with identical dimensions, options and seed; each may have
// consumed a different shard of the same logical edge stream (partitioned
// by edge, by set, or by time — duplicates across shards are harmless).
// After the merge, Result summarizes the union of the shards: this is how
// the estimator runs over partitioned or distributed streams.
func (e *Estimator) Merge(other *Estimator) error {
	if other == nil {
		return fmt.Errorf("streamcover: merge with nil estimator")
	}
	if err := e.inner.Merge(other.inner); err != nil {
		return fmt.Errorf("streamcover: %w", err)
	}
	e.edges += other.edges
	return nil
}

// SpaceBreakdown reports where the estimator's retained words live, keyed
// by component ("largecommon", "largeset", "smallset", "reduction") —
// useful for understanding which part of the Õ(m/α²) bound dominates at a
// given configuration.
func (e *Estimator) SpaceBreakdown() map[string]int { return e.inner.SpaceBreakdown() }

// Coverage computes the exact number of distinct elements covered by the
// chosen sets in a stored edge list — a convenience for validating
// reported solutions in examples and tests. It is NOT streaming: it scans
// the provided edges. Set IDs ≥ m and out-of-range edges are rejected,
// matching the validation style of GreedyCover (earlier versions silently
// skipped them, which masked caller bugs).
func Coverage(edges []Edge, m, n int, setIDs []uint32) (int, error) {
	chosen := make(map[uint32]bool, len(setIDs))
	for _, id := range setIDs {
		if int(id) >= m {
			return 0, fmt.Errorf("streamcover: set id %d >= m=%d", id, m)
		}
		chosen[id] = true
	}
	covered := setsystem.NewBitset(n)
	for _, e := range edges {
		if int(e.Set) >= m {
			return 0, fmt.Errorf("streamcover: set id %d >= m=%d", e.Set, m)
		}
		if int(e.Elem) >= n {
			return 0, fmt.Errorf("streamcover: element id %d >= n=%d", e.Elem, n)
		}
		if chosen[e.Set] {
			covered.Set(e.Elem)
		}
	}
	return covered.Count(), nil
}

// GreedyCover runs the classic offline greedy (the 1-1/e baseline the
// paper's Introduction starts from) on a stored edge list, returning the
// chosen set IDs and their exact coverage. It is NOT streaming; use it as
// ground truth on inputs small enough to hold in memory.
func GreedyCover(edges []Edge, m, n, k int) ([]uint32, int, error) {
	sets := make([][]uint32, m)
	for _, e := range edges {
		if int(e.Set) >= m {
			return nil, 0, fmt.Errorf("streamcover: set id %d >= m=%d", e.Set, m)
		}
		if int(e.Elem) >= n {
			return nil, 0, fmt.Errorf("streamcover: element id %d >= n=%d", e.Elem, n)
		}
		sets[e.Set] = append(sets[e.Set], e.Elem)
	}
	ss, err := setsystem.New(n, sets)
	if err != nil {
		return nil, 0, err
	}
	ids, cov := ss.LazyGreedy(k)
	out := make([]uint32, len(ids))
	for i, id := range ids {
		out[i] = uint32(id)
	}
	return out, cov, nil
}
